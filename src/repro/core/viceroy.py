"""The viceroy: centralized, type-independent resource management (§3.2).

The viceroy is responsible for:

- routing operations on Odyssey objects to the managing warden (via the
  :class:`~repro.core.namespace.Namespace`, standing in for the in-kernel
  interceptor);
- monitoring resources — network bandwidth through the RPC logs and its
  :class:`~repro.core.policies.Policy`, other resources through attached
  :mod:`~repro.core.monitors`;
- tracking ``request`` registrations and generating upcalls the moment a
  resource's availability leaves a registered window of tolerance.

A registration is one-shot: once violated and notified, it is dropped; the
application re-registers with a window matching its new fidelity (paper
§4.3).
"""

from repro import telemetry
from repro.connectivity.state import ConnState, ConnectivityTracker
from repro.core.namespace import Namespace
from repro.core.policies import OdysseyPolicy
from repro.core.resources import (
    Registration,
    Resource,
    ResourceDescriptor,
    Window,
    advance_request_ids,
)
from repro.core.upcalls import Upcall, UpcallDispatcher
from repro.errors import (
    BadDescriptor,
    OdysseyError,
    RequestNotFound,
    ToleranceError,
)


class Viceroy:
    """Central resource manager for one mobile client."""

    def __init__(self, sim, network, policy=None, upcalls=None, root="/odyssey",
                 connectivity=None):
        self.sim = sim
        self.network = network
        self.policy = policy or OdysseyPolicy()
        self.policy.attach(self)
        self.namespace = Namespace(root)
        self.upcalls = upcalls or UpcallDispatcher(sim)
        self._registrations = {}
        #: Secondary indexes over ``_registrations`` so per-resource and
        #: per-connection rechecks scan only the registrations that can
        #: match.  With thousands of fleet clients the flat table makes
        #: every round-trip recheck O(all registrations); the indexes make
        #: it O(matching ones).  Insertion order within each index matches
        #: the flat table, so violation/upcall order is unchanged.
        self._by_resource = {}  # Resource -> {request_id: Registration}
        self._by_connection = {}  # connection_id -> {request_id: Registration}
        self._connections = {}  # connection_id -> (conn, warden)
        self._monitors = {}  # Resource -> monitor
        #: Per-connection connectivity trackers; ``connectivity`` supplies
        #: shared hysteresis overrides (degrade_after/disconnect_after/
        #: recover_after) for every tracker this viceroy creates.
        self._trackers = {}
        self._tracker_config = dict(connectivity or {})
        self.upcalls_sent = 0
        #: level=0 "disconnected" upcalls issued (subset of upcalls_sent).
        self.disconnect_upcalls = 0
        #: Observers called as ``fn(event, **info)`` on registration
        #: activity ("request", "upcall", "connection") — the seam the
        #: chaos auditor hangs off without a live telemetry recorder.
        self._observers = []

    # -- wiring -------------------------------------------------------------

    def add_observer(self, fn):
        """Subscribe ``fn(event, **info)`` to registration-path activity.

        Events: ``"request"`` (app, path, request_id, time), ``"upcall"``
        (kind, app, request_id, level, time), ``"connection"``
        (connection_id, tracker, time).  The list is empty in ordinary
        runs, so the hot path pays one truthiness check.
        """
        self._observers.append(fn)

    def _notify_observers(self, event, **info):
        for fn in self._observers:
            fn(event, **info)

    def mount(self, prefix, warden):
        """Mount ``warden`` into the Odyssey namespace."""
        self.namespace.mount(prefix, warden)

    def register_connection(self, conn, warden=None):
        """Adopt an RPC connection: subscribe to its log, inform the policy.

        Every adopted connection gets a :class:`ConnectivityTracker`; its
        transitions drive disconnected upcalls and warden reintegration.
        """
        if conn.connection_id in self._connections:
            raise OdysseyError(f"connection {conn.connection_id!r} already registered")
        self._connections[conn.connection_id] = (conn, warden)
        tracker = ConnectivityTracker(
            clock=lambda: self.sim.now, name=conn.connection_id,
            **self._tracker_config,
        )
        tracker.subscribe(
            lambda transition, cid=conn.connection_id:
            self._connectivity_changed(cid, transition)
        )
        self._trackers[conn.connection_id] = tracker
        self.policy.register_connection(conn)
        conn.log.subscribe(self)
        if self._observers:
            self._notify_observers("connection",
                                   connection_id=conn.connection_id,
                                   tracker=tracker, time=self.sim.now)

    def unregister_connection(self, connection_id, notify=True):
        """Drop an adopted connection and tear down everything keyed on it.

        Registrations bound to the connection can never be re-checked once
        it is gone (``availability`` would raise on the dead id, wedging
        every subsequent window check), so they are removed here.  With
        ``notify=True`` each owning application that has an upcall receiver
        gets one final upcall carrying ``level=None`` — the teardown signal
        (see :class:`~repro.core.upcalls.Upcall`) — so it can re-register
        against a replacement connection.  Returns the number of
        registrations torn down.
        """
        if connection_id not in self._connections:
            raise OdysseyError(f"unknown connection {connection_id!r}")
        conn, _ = self._connections.pop(connection_id)
        self._trackers.pop(connection_id, None)
        conn.log.unsubscribe(self)
        self.policy.unregister_connection(connection_id)
        doomed = list(self._by_connection.get(connection_id, {}).values())
        for registration in doomed:
            self._drop_registration(registration)
            if notify and self.upcalls.has_receiver(registration.app):
                self._send_upcall(registration,
                                  registration.descriptor.resource,
                                  None, kind="teardown")
        return len(doomed)

    def attach_monitor(self, monitor):
        """Adopt a non-bandwidth resource monitor (battery, CPU, ...)."""
        if monitor.resource in self._monitors:
            raise OdysseyError(f"monitor for {monitor.resource} already attached")
        self._monitors[monitor.resource] = monitor
        monitor.attach(self)

    # -- connectivity -----------------------------------------------------------

    def connectivity(self, connection_id):
        """The connectivity tracker for an adopted connection (or None)."""
        return self._trackers.get(connection_id)

    def _connectivity_changed(self, connection_id, transition):
        """A tracker moved: issue disconnected upcalls / trigger reintegration."""
        if transition.target is ConnState.DISCONNECTED:
            self._notify_disconnected(connection_id)
        elif (transition.target is ConnState.CONNECTED
              and transition.source is ConnState.RECONNECTING):
            entry = self._connections.get(connection_id)
            if entry is not None:
                conn, warden = entry
                if warden is not None:
                    warden.on_reconnect(conn)

    def _notify_disconnected(self, connection_id):
        """Tear down the connection's registrations with level=0 upcalls.

        A disconnected link has zero availability by definition, so every
        window riding on it is violated at once: the registration is
        dropped (one-shot, as usual) and the owning application's handler
        receives an upcall carrying ``level=0.0`` — the "disconnected"
        signal.  Unlike the teardown notice (``level=None``) the connection
        object still exists; applications should drop to their lowest
        fidelity, lean on the warden's cache, and re-register when the
        degraded-service period ends.
        """
        doomed = list(self._by_connection.get(connection_id, {}).values())
        for registration in doomed:
            self._drop_registration(registration)
            if self.upcalls.has_receiver(registration.app):
                self._send_upcall(registration,
                                  registration.descriptor.resource,
                                  0.0, kind="disconnect")

    # -- registration bookkeeping -------------------------------------------

    def _add_registration(self, registration):
        self._registrations[registration.request_id] = registration
        resource = registration.descriptor.resource
        self._by_resource.setdefault(resource, {})[
            registration.request_id] = registration
        if registration.connection_id is not None:
            self._by_connection.setdefault(registration.connection_id, {})[
                registration.request_id] = registration

    def _drop_registration(self, registration):
        del self._registrations[registration.request_id]
        resource = registration.descriptor.resource
        bucket = self._by_resource.get(resource)
        if bucket is not None:
            bucket.pop(registration.request_id, None)
            if not bucket:
                del self._by_resource[resource]
        if registration.connection_id is not None:
            bucket = self._by_connection.get(registration.connection_id)
            if bucket is not None:
                bucket.pop(registration.request_id, None)
                if not bucket:
                    del self._by_connection[registration.connection_id]

    def _distinct_wardens(self):
        """Each mounted warden once, in mount order (a warden may back
        several prefixes)."""
        seen = []
        for warden in self.namespace.mounts.values():
            if warden not in seen:
                seen.append(warden)
        return seen

    # -- checkpoint / restore ----------------------------------------------------

    def checkpoint(self):
        """Plain-data snapshot of the state a viceroy restart must not lose.

        Covers live window-of-tolerance registrations (with their request
        ids), upcall counters, each connection's connectivity state, and
        every mounted warden's deferred-op log (keyed by warden name) —
        the queued disconnected-mode writes, their per-log seq counter
        included, so a restored viceroy replays them in the original order.
        Everything is JSON-serializable; :meth:`restore` is the inverse.
        """
        return {
            "deferred": {warden.name: warden.deferred.checkpoint()
                         for warden in self._distinct_wardens()},
            "registrations": [
                {"request_id": r.request_id, "app": r.app, "path": r.path,
                 "resource": r.descriptor.resource.label,
                 "lower": r.descriptor.window.lower,
                 "upper": r.descriptor.window.upper,
                 "handler": r.descriptor.handler,
                 "connection_id": r.connection_id}
                for r in self._registrations.values()
            ],
            "upcalls_sent": self.upcalls_sent,
            "disconnect_upcalls": self.disconnect_upcalls,
            "connectivity": {cid: tracker.state.value
                             for cid, tracker in self._trackers.items()},
        }

    def restore(self, state):
        """Rebuild registrations from a :meth:`checkpoint` snapshot.

        Replaces the current registration table.  Registrations bound to a
        connection id this viceroy no longer knows cannot be re-checked and
        are dropped; their request ids are returned so the caller can
        notify the owning applications.  The shared request-id counter is
        advanced past every restored id, so post-restore ``request`` calls
        can never mint a duplicate.  Returns ``(restored, dropped_ids)``.

        Connectivity trackers are *not* restored: a restarted viceroy must
        re-derive link health from fresh evidence, not trust a snapshot
        from before it went down.  Deferred-op logs are restored into the
        warden with the matching name; snapshots for wardens this viceroy
        does not mount are ignored.
        """
        self._registrations = {}
        self._by_resource = {}
        self._by_connection = {}
        dropped = []
        highest = 0
        for snap in state["registrations"]:
            connection_id = snap["connection_id"]
            highest = max(highest, snap["request_id"])
            if (connection_id is not None
                    and connection_id not in self._connections):
                dropped.append(snap["request_id"])
                continue
            descriptor = ResourceDescriptor(
                resource=Resource.from_label(snap["resource"]),
                window=Window(snap["lower"], snap["upper"]),
                handler=snap["handler"],
            )
            registration = Registration(
                app=snap["app"], path=snap["path"], descriptor=descriptor,
                connection_id=connection_id, request_id=snap["request_id"],
            )
            self._add_registration(registration)
        advance_request_ids(highest)
        wardens = {warden.name: warden for warden in self._distinct_wardens()}
        for name, snapshot in state.get("deferred", {}).items():
            warden = wardens.get(name)
            if warden is not None:
                warden.deferred.restore(snapshot)
        self.upcalls_sent = state.get("upcalls_sent", self.upcalls_sent)
        self.disconnect_upcalls = state.get("disconnect_upcalls",
                                            self.disconnect_upcalls)
        return len(self._registrations), dropped

    # -- log observation (RpcLog observer interface) ---------------------------

    def on_round_trip(self, log, entry):
        self.policy.on_round_trip(log, entry)
        self._recheck(Resource.NETWORK_LATENCY, connection_id=log.connection_id)

    def on_throughput(self, log, entry):
        self.policy.on_throughput(log, entry)
        self.recheck_bandwidth()

    def monitor_changed(self, resource):
        """A monitor's level moved; re-check its registrations."""
        self._recheck(resource)

    # -- availability -----------------------------------------------------------

    def availability(self, resource, connection_id=None, path=None):
        """Current availability of ``resource`` (None if not yet known).

        Bandwidth and latency are per-connection: give either the
        connection id or an Odyssey path whose warden identifies it.
        """
        if resource is Resource.NETWORK_BANDWIDTH:
            cid = self._connection_for(connection_id, path)
            return None if cid is None else self.policy.availability(cid)
        if resource is Resource.NETWORK_LATENCY:
            cid = self._connection_for(connection_id, path)
            if cid is None:
                return None
            rtt = self.policy.round_trip(cid)
            return rtt * 1e6 / 2.0 if rtt else None  # one-way, microseconds
        monitor = self._monitors.get(resource)
        if monitor is None:
            raise BadDescriptor(f"no monitor attached for resource {resource}")
        return monitor.current()

    def total_bandwidth(self):
        """The policy's estimate of total client bandwidth (or None)."""
        return self.policy.total()

    def availability_for_connection(self, connection_id):
        """Shorthand: bandwidth available to one connection (or None)."""
        return self.availability(
            Resource.NETWORK_BANDWIDTH, connection_id=connection_id
        )

    def _connection_for(self, connection_id, path):
        if connection_id is not None:
            if connection_id not in self._connections:
                raise OdysseyError(f"unknown connection {connection_id!r}")
            return connection_id
        if path is not None:
            warden, rest = self.namespace.resolve(path)
            return warden.primary_connection(rest).connection_id
        return None

    # -- the request/cancel interface (paper Fig. 3a) ------------------------------

    def request(self, app, path, descriptor):
        """Register a window of tolerance (paper §4.2).

        If the resource is currently outside the window, raises
        :class:`~repro.errors.ToleranceError` carrying the available level
        — the application is expected to retry with a window matching a
        new fidelity.  Otherwise returns a unique request id.
        """
        resource = descriptor.resource
        connection_id = None
        if resource in (Resource.NETWORK_BANDWIDTH, Resource.NETWORK_LATENCY):
            connection_id = self._connection_for(None, path)
            level = self.availability(resource, connection_id=connection_id)
        else:
            level = self.availability(resource)
        rec = telemetry.RECORDER
        if level is not None and not descriptor.window.contains(level):
            if rec.enabled:
                rec.count("viceroy.tolerance_rejections",
                          resource=resource.label)
            raise ToleranceError(resource, level)
        registration = Registration(
            app=app, path=path, descriptor=descriptor, connection_id=connection_id
        )
        self._add_registration(registration)
        if rec.enabled:
            rec.count("viceroy.requests", resource=resource.label)
            rec.event("viceroy.request", app=app, path=path,
                      request_id=registration.request_id,
                      resource=resource.label,
                      lower=descriptor.window.lower,
                      upper=descriptor.window.upper)
        if self._observers:
            self._notify_observers("request", app=app, path=path,
                                   request_id=registration.request_id,
                                   time=self.sim.now)
        return registration.request_id

    def cancel(self, request_id):
        """Discard a registration (paper Fig. 3a)."""
        if request_id not in self._registrations:
            raise RequestNotFound(f"no registered request {request_id!r}")
        self._drop_registration(self._registrations[request_id])
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("viceroy.cancels")

    def registered_requests(self, app=None):
        """Live registrations, optionally filtered by application."""
        return [r for r in self._registrations.values()
                if app is None or r.app == app]

    # -- window checking ------------------------------------------------------------

    def recheck_bandwidth(self):
        """Re-check every bandwidth registration (estimate or level changed)."""
        self._recheck(Resource.NETWORK_BANDWIDTH)

    def _recheck(self, resource, connection_id=None):
        if connection_id is not None:
            candidates = self._by_connection.get(connection_id, {})
        else:
            candidates = self._by_resource.get(resource, {})
        violated = []
        for registration in candidates.values():
            descriptor = registration.descriptor
            if descriptor.resource is not resource:
                continue
            level = self.availability(
                resource, connection_id=registration.connection_id
            ) if registration.connection_id else self.availability(resource)
            if level is None:
                continue
            if not descriptor.window.contains(level):
                violated.append((registration, level))
        for registration, level in violated:
            self._drop_registration(registration)
            self._send_upcall(registration, resource, level, kind="violation")

    def _send_upcall(self, registration, resource, level, kind):
        """Issue one upcall for a dropped registration (all three flavours:
        window ``violation``, connection ``teardown``, link ``disconnect``)."""
        self.upcalls_sent += 1
        if kind == "disconnect":
            self.disconnect_upcalls += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("viceroy.upcalls", kind=kind)
            rec.event("viceroy.upcall", kind=kind, app=registration.app,
                      request_id=registration.request_id,
                      resource=resource.label, level=level)
        if self._observers:
            self._notify_observers("upcall", kind=kind, app=registration.app,
                                   request_id=registration.request_id,
                                   level=level, time=self.sim.now)
        self.upcalls.send(
            registration.app,
            registration.descriptor.handler,
            Upcall(registration.request_id, resource, level),
        )

    # -- object operations (delegated through the namespace) --------------------------

    def tsop(self, app, path, opcode, inbuf=None):
        """Type-specific operation (paper Fig. 3e).  Generator."""
        warden, rest = self.namespace.resolve(path)
        result = yield from warden.tsop(app, rest, opcode, inbuf)
        return result

    def vfs_open(self, app, path, flags="r"):
        warden, rest = self.namespace.resolve(path)
        return warden, warden.vfs_open(app, rest, flags)

    def vfs_stat(self, path):
        warden, rest = self.namespace.resolve(path)
        return warden.vfs_stat(rest)

    def vfs_readdir(self, path):
        return self.namespace.readdir(path)

    # -- introspection ---------------------------------------------------------

    def describe(self):
        """A snapshot of the viceroy's state, for debugging and tooling.

        Returns a dict: mounts, connections (with availability), attached
        monitors (with levels), live registrations, and counters.
        """
        connections = {}
        for cid in self._connections:
            try:
                connections[cid] = self.policy.availability(cid)
            except Exception:  # noqa: BLE001 - introspection must not throw
                connections[cid] = None
        return {
            "policy": self.policy.name,
            "total_bandwidth": self.total_bandwidth(),
            "mounts": {prefix: warden.name
                       for prefix, warden in self.namespace.mounts.items()},
            "connections": connections,
            "monitors": {resource.label: monitor.current()
                         for resource, monitor in self._monitors.items()},
            "connectivity": {cid: tracker.state.value
                             for cid, tracker in self._trackers.items()},
            "disconnect_upcalls": self.disconnect_upcalls,
            "registrations": [
                {"request_id": r.request_id, "app": r.app, "path": r.path,
                 "resource": r.descriptor.resource.label,
                 "window": (r.descriptor.window.lower,
                            r.descriptor.window.upper)}
                for r in self._registrations.values()
            ],
            "upcalls_sent": self.upcalls_sent,
        }
