"""Heartbeat probing: active evidence for the connectivity state machine.

Passive evidence (fetch successes and timeouts) stops flowing the moment a
warden enters degraded service — it deliberately keeps real traffic off a
link it believes is dead.  Something must still watch for the link's return;
that is the :class:`HeartbeatProber`, a tiny simulated process that sends a
built-in ``__ping__`` RPC (answered by every :class:`~repro.rpc.connection.
RpcService` with zero compute) whenever the tracker is anything other than
CONNECTED, and feeds the outcome back as probe evidence.

While CONNECTED the prober just sleeps: fetch traffic itself is the
heartbeat, and idle pings would pollute the round-trip log the bandwidth
estimator feeds on.
"""

from repro.connectivity.state import ConnState
from repro.errors import RpcError, RpcTimeout
from repro.rpc.connection import PING_OP

#: The operation name every RpcService answers without registration.
PROBE_OP = PING_OP
#: Seconds between probes while the connection is not CONNECTED.
DEFAULT_PROBE_INTERVAL = 2.0
#: Per-probe timeout: short — a probe is cheap and the next one is soon.
DEFAULT_PROBE_TIMEOUT = 1.5
#: Probe request size on the wire (a bare header's worth of payload).
PROBE_BODY_BYTES = 16


class HeartbeatProber:
    """Periodically pings one connection while it is unhealthy.

    The prober starts its process at construction and runs until
    :meth:`stop` is called or its connection is closed (a closed
    connection's ``call`` raises :class:`~repro.errors.RpcError`, which
    terminates the loop cleanly).
    """

    def __init__(self, sim, conn, tracker, interval=DEFAULT_PROBE_INTERVAL,
                 timeout=DEFAULT_PROBE_TIMEOUT, op=PROBE_OP):
        self.sim = sim
        self.conn = conn
        self.tracker = tracker
        self.interval = interval
        self.timeout = timeout
        self.op = op
        self.probes_sent = 0
        self._stopped = False
        self.process = sim.process(
            self._run(), name=f"probe:{conn.connection_id}"
        )

    def stop(self):
        """Ask the prober to exit at its next wakeup."""
        self._stopped = True

    def _run(self):
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            if self._stopped:
                return
            if self.tracker.state is ConnState.CONNECTED:
                continue  # fetch traffic is evidence enough
            self.probes_sent += 1
            try:
                yield from self.conn.call(
                    self.op, body_bytes=PROBE_BODY_BYTES, timeout=self.timeout
                )
            except RpcTimeout:
                self.tracker.note_failure(probe=True)
            except RpcError:
                return  # connection closed under us; prober retires
            else:
                self.tracker.note_success(probe=True)
