"""Heartbeat probing over real sockets.

The asyncio twin of :class:`~repro.connectivity.probe.HeartbeatProber`,
with one deliberate difference: it pings on every interval, even while
CONNECTED.  On the simulated link an idle ping is noise — fetch traffic is
the heartbeat and probes would pollute the bandwidth estimator's
round-trip log.  On a real broker connection the ping does double duty as
a *keepalive*: the broker reaps sessions silent past its heartbeat budget,
so an idle but healthy client must keep talking.  Probe outcomes feed the
same :class:`~repro.connectivity.ConnectivityTracker` evidence stream
(``probe=True``), so the hysteresis state machine runs unmodified on
wall-clock time.
"""

import asyncio

from repro.connectivity.probe import (
    DEFAULT_PROBE_INTERVAL,
    DEFAULT_PROBE_TIMEOUT,
)
from repro.errors import RemoteCallError, RpcTimeout, TransportError


class AsyncHeartbeatProber:
    """Periodically pings one :class:`~repro.broker.BrokerClient`.

    Construct then :meth:`start` inside a running event loop; the loop
    retires on :meth:`stop` or when the connection dies (``ping`` raising
    :class:`~repro.errors.TransportError`).  Timeouts are fed to the
    client's tracker as probe failures; completed pings as successes.
    """

    def __init__(self, client, interval=DEFAULT_PROBE_INTERVAL,
                 timeout=DEFAULT_PROBE_TIMEOUT):
        self.client = client
        self.interval = interval
        self.timeout = timeout
        self.probes_sent = 0
        self._stopped = False
        self._task = None

    def start(self):
        if self._task is not None:
            raise TransportError(f"prober for {self.client.name} "
                                 "already started")
        self._task = asyncio.ensure_future(self._run())
        return self

    async def stop(self):
        """Stop probing and wait for the loop to exit."""
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self):
        while not self._stopped:
            await asyncio.sleep(self.interval)
            if self._stopped:
                return
            self.probes_sent += 1
            try:
                # probe=True routes the outcome — success or timeout —
                # to the tracker as heartbeat evidence.
                await self.client.ping(timeout=self.timeout, probe=True)
            except RpcTimeout:
                continue
            except (TransportError, RemoteCallError):
                return  # connection died under us; prober retires
