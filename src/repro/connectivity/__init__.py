"""Disconnected operation: state machine, heartbeats, and deferred writes.

The subsystem behind degraded service (see docs/architecture.md §9): a
hysteresis-filtered per-connection :class:`ConnectivityTracker`, the
:class:`HeartbeatProber` that watches for a dead link's return, and the
:class:`DeferredOpLog` that queues mutating operations for reintegration.
The viceroy owns one tracker per registered connection; wardens consult it
through :meth:`~repro.core.warden.Warden.resilient_fetch` and queue writes
through :meth:`~repro.core.warden.Warden.tsop`.
"""

from repro.connectivity.async_probe import AsyncHeartbeatProber
from repro.connectivity.deferred import (
    DEFAULT_CAPACITY,
    DeferredOp,
    DeferredOpLog,
    ReplayReport,
)
from repro.connectivity.probe import PROBE_OP, HeartbeatProber
from repro.connectivity.state import (
    VALID_TRANSITIONS,
    ConnState,
    ConnectivityTracker,
    Transition,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "PROBE_OP",
    "VALID_TRANSITIONS",
    "AsyncHeartbeatProber",
    "ConnState",
    "ConnectivityTracker",
    "DeferredOp",
    "DeferredOpLog",
    "HeartbeatProber",
    "ReplayReport",
    "Transition",
]
