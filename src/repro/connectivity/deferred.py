"""The deferred-operation log: write-behind for disconnected operation.

Mutating type-specific operations issued while a connection is disconnected
are recorded here instead of hanging in retries; on reconnection the warden
replays them **in enqueue order** (reintegration) and reports each op's
fate.  The log is deliberately small and bounded — a mobile client that has
been offline for an hour should refuse new writes loudly
(:class:`~repro.errors.DeferredLogFull`), not grow without limit.

Coalescing: operations that overwrite each other (a video player saving its
playback position every few seconds, say) carry a ``coalesce`` key; a new
append with the same key replaces the queued older op, so reintegration
replays only the final value.  The replaced op's slot is freed, which is
what makes a bounded log workable for chatty writers.
"""

from dataclasses import dataclass

from repro.errors import DeferredLogFull, OdysseyError

#: Default queued-op capacity per warden.
DEFAULT_CAPACITY = 64


@dataclass
class DeferredOp:
    """One queued mutating operation, replayable via ``Warden.tsop``.

    ``seq`` is assigned by the owning :class:`DeferredOpLog` on append —
    never by a process-wide counter.  A module-global counter restarts in
    every worker process and after checkpoint/restore, so seq values would
    collide across shards and a restored log could not reconstruct its
    replay order.  Per-log sequencing survives both (the log checkpoints
    its own counter).
    """

    app: str
    rest: str
    opcode: str
    inbuf: object
    queued_at: float
    #: Ops sharing a coalesce key collapse to the most recent one.
    coalesce: str = None
    seq: int = None


@dataclass(frozen=True)
class ReplayReport:
    """The fate of one deferred op during reintegration.

    ``status`` is one of:

    - ``"applied"`` — the server accepted the operation;
    - ``"conflict"`` — the server reported a conflicting concurrent update
      (the reply body carried ``{"conflict": True}``);
    - ``"failed"`` — the replay itself failed (RPC error mid-reintegration);
    - ``"requeued"`` — the link died again mid-replay and the op went back
      into the log.
    """

    op: DeferredOp
    status: str
    detail: object = None
    replayed_at: float = None


class DeferredOpLog:
    """A bounded, coalescing FIFO of :class:`DeferredOp` entries."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity <= 0:
            raise OdysseyError(f"deferred-log capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._ops = []
        self._next_seq = 1
        self.enqueued = 0
        self.coalesced = 0
        self.replayed = 0
        #: Optional ``fn(op, replaced_seq)`` called on every successful
        #: append (``replaced_seq`` is the seq the append coalesced away,
        #: or ``None``) — the seam the chaos auditor's op accounting
        #: hangs off.
        self.observer = None

    def __len__(self):
        return len(self._ops)

    def __iter__(self):
        return iter(list(self._ops))

    def __bool__(self):
        return bool(self._ops)

    def append(self, op):
        """Queue ``op``, coalescing by key; raises :class:`DeferredLogFull`.

        Assigns ``op.seq`` from this log's own counter when unset, so seq
        values are unique and monotonic *per log* regardless of how many
        logs (or worker processes) exist.
        """
        if op.seq is None:
            op.seq = self._next_seq
            self._next_seq += 1
        else:
            self._next_seq = max(self._next_seq, op.seq + 1)
        replaced = None
        if op.coalesce is not None:
            for queued in self._ops:
                if queued.coalesce == op.coalesce:
                    self._ops.remove(queued)
                    self.coalesced += 1
                    replaced = queued.seq
                    break
        if len(self._ops) >= self.capacity:
            raise DeferredLogFull(
                f"deferred-op log full ({self.capacity} ops queued); "
                f"cannot queue {op.opcode!r}"
            )
        self._ops.append(op)
        self.enqueued += 1
        if self.observer is not None:
            self.observer(op, replaced)
        return op

    def drain(self):
        """Remove and return every queued op, oldest first (for replay)."""
        ops, self._ops = self._ops, []
        self.replayed += len(ops)
        return ops

    def requeue(self, ops):
        """Put drained ops back at the *front*, ahead of later arrivals.

        The link died again mid-replay: the unplayed tail must keep its
        place before any op queued during the replay attempt.  Not a new
        enqueue (counters untouched) and never raises — a transient
        overshoot of ``capacity`` beats dropping writes already accepted
        into the log.
        """
        ops = list(ops)
        self._ops = ops + self._ops
        self.replayed -= len(ops)

    def clear(self):
        self._ops = []

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self):
        """JSON-safe snapshot: queued ops, counters, and the seq counter.

        The counter matters as much as the ops: a restored log that re-minted
        seq 1 would collide with ops already replayed (or still queued
        elsewhere), making the replay order unreconstructible.
        """
        return {
            "next_seq": self._next_seq,
            "enqueued": self.enqueued,
            "coalesced": self.coalesced,
            "replayed": self.replayed,
            "ops": [
                {"app": op.app, "rest": op.rest, "opcode": op.opcode,
                 "inbuf": op.inbuf, "queued_at": op.queued_at,
                 "coalesce": op.coalesce, "seq": op.seq}
                for op in self._ops
            ],
        }

    def restore(self, state):
        """Rebuild the queue from a :meth:`checkpoint` snapshot.

        Replaces the current queue.  The seq counter resumes past both the
        snapshot's counter and every restored op, so post-restore appends
        can never mint a duplicate seq.  Returns the number of restored ops.
        """
        self._ops = [
            DeferredOp(app=snap["app"], rest=snap["rest"],
                       opcode=snap["opcode"], inbuf=snap["inbuf"],
                       queued_at=snap["queued_at"],
                       coalesce=snap.get("coalesce"), seq=snap["seq"])
            for snap in state["ops"]
        ]
        highest = max((op.seq for op in self._ops), default=0)
        self._next_seq = max(state.get("next_seq", 1), highest + 1)
        self.enqueued = state.get("enqueued", self.enqueued)
        self.coalesced = state.get("coalesced", self.coalesced)
        self.replayed = state.get("replayed", self.replayed)
        return len(self._ops)
