"""The deferred-operation log: write-behind for disconnected operation.

Mutating type-specific operations issued while a connection is disconnected
are recorded here instead of hanging in retries; on reconnection the warden
replays them **in enqueue order** (reintegration) and reports each op's
fate.  The log is deliberately small and bounded — a mobile client that has
been offline for an hour should refuse new writes loudly
(:class:`~repro.errors.DeferredLogFull`), not grow without limit.

Coalescing: operations that overwrite each other (a video player saving its
playback position every few seconds, say) carry a ``coalesce`` key; a new
append with the same key replaces the queued older op, so reintegration
replays only the final value.  The replaced op's slot is freed, which is
what makes a bounded log workable for chatty writers.
"""

import itertools
from dataclasses import dataclass, field

from repro.errors import DeferredLogFull, OdysseyError

#: Default queued-op capacity per warden.
DEFAULT_CAPACITY = 64

_op_seq = itertools.count(1)


@dataclass
class DeferredOp:
    """One queued mutating operation, replayable via ``Warden.tsop``."""

    app: str
    rest: str
    opcode: str
    inbuf: object
    queued_at: float
    #: Ops sharing a coalesce key collapse to the most recent one.
    coalesce: str = None
    seq: int = field(default_factory=lambda: next(_op_seq))


@dataclass(frozen=True)
class ReplayReport:
    """The fate of one deferred op during reintegration.

    ``status`` is one of:

    - ``"applied"`` — the server accepted the operation;
    - ``"conflict"`` — the server reported a conflicting concurrent update
      (the reply body carried ``{"conflict": True}``);
    - ``"failed"`` — the replay itself failed (RPC error mid-reintegration);
    - ``"requeued"`` — the link died again mid-replay and the op went back
      into the log.
    """

    op: DeferredOp
    status: str
    detail: object = None
    replayed_at: float = None


class DeferredOpLog:
    """A bounded, coalescing FIFO of :class:`DeferredOp` entries."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity <= 0:
            raise OdysseyError(f"deferred-log capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._ops = []
        self.enqueued = 0
        self.coalesced = 0
        self.replayed = 0

    def __len__(self):
        return len(self._ops)

    def __iter__(self):
        return iter(list(self._ops))

    def __bool__(self):
        return bool(self._ops)

    def append(self, op):
        """Queue ``op``, coalescing by key; raises :class:`DeferredLogFull`."""
        if op.coalesce is not None:
            for queued in self._ops:
                if queued.coalesce == op.coalesce:
                    self._ops.remove(queued)
                    self.coalesced += 1
                    break
        if len(self._ops) >= self.capacity:
            raise DeferredLogFull(
                f"deferred-op log full ({self.capacity} ops queued); "
                f"cannot queue {op.opcode!r}"
            )
        self._ops.append(op)
        self.enqueued += 1
        return op

    def drain(self):
        """Remove and return every queued op, oldest first (for replay)."""
        ops, self._ops = self._ops, []
        self.replayed += len(ops)
        return ops

    def requeue(self, ops):
        """Put drained ops back at the *front*, ahead of later arrivals.

        The link died again mid-replay: the unplayed tail must keep its
        place before any op queued during the replay attempt.  Not a new
        enqueue (counters untouched) and never raises — a transient
        overshoot of ``capacity`` beats dropping writes already accepted
        into the log.
        """
        ops = list(ops)
        self._ops = ops + self._ops
        self.replayed -= len(ops)

    def clear(self):
        self._ops = []
