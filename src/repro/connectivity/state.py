"""The per-connection connectivity state machine.

Disconnected operation (Kistler & Satyanarayanan's Coda lineage, which the
paper cites as Odyssey's ancestry) needs the *system* to know when a
connection has gone away and when it has come back — applications should
inherit that judgement, not each reimplement it.  :class:`ConnectivityTracker`
distils RPC success/failure evidence and heartbeat probes into four states::

    CONNECTED --> DEGRADED --> DISCONNECTED --> RECONNECTING --> CONNECTED
                     \\______________________________/ (recovery)   |
                                DISCONNECTED  <---------------------+ (relapse)

with hysteresis in both directions: it takes ``degrade_after`` consecutive
failures to leave CONNECTED, ``disconnect_after`` to declare the link dead,
and ``recover_after`` consecutive successes to trust it again.  A loss burst
that eats one packet never flaps the machine; a blackout that eats everything
marches it to DISCONNECTED within a few failed operations.

The machine never jumps CONNECTED -> RECONNECTING: RECONNECTING is only
reachable from DISCONNECTED (the first success after a declared outage),
and only leads back to CONNECTED (sustained success) or DISCONNECTED
(relapse).  :data:`VALID_TRANSITIONS` encodes the full edge set and
:meth:`ConnectivityTracker._move` enforces it.
"""

import enum
from dataclasses import dataclass

from repro import telemetry
from repro.errors import OdysseyError


class ConnState(enum.Enum):
    """Connectivity states, ordered from healthy to dead and back."""

    CONNECTED = "connected"
    DEGRADED = "degraded"
    DISCONNECTED = "disconnected"
    RECONNECTING = "reconnecting"

    def __str__(self):
        return self.value


#: The legal edges of the state machine.  Anything else is a programming
#: error and raises, so regressions cannot silently corrupt the lifecycle.
VALID_TRANSITIONS = {
    ConnState.CONNECTED: frozenset({ConnState.DEGRADED}),
    ConnState.DEGRADED: frozenset({ConnState.CONNECTED, ConnState.DISCONNECTED}),
    ConnState.DISCONNECTED: frozenset({ConnState.RECONNECTING}),
    ConnState.RECONNECTING: frozenset({ConnState.CONNECTED, ConnState.DISCONNECTED}),
}

#: Consecutive failures before CONNECTED degrades.
DEFAULT_DEGRADE_AFTER = 2
#: Consecutive failures before the link is declared DISCONNECTED.
DEFAULT_DISCONNECT_AFTER = 4
#: Consecutive successes before a degraded or reconnecting link is trusted.
DEFAULT_RECOVER_AFTER = 2


@dataclass(frozen=True)
class Transition:
    """One recorded state change: when, from, to, and why."""

    time: float
    source: ConnState
    target: ConnState
    reason: str


class ConnectivityTracker:
    """Hysteresis-filtered connectivity judgement for one connection.

    Evidence arrives through :meth:`note_success` and :meth:`note_failure`
    (``probe=True`` marks heartbeat evidence; the machine treats both kinds
    identically, the flag only feeds the counters).  ``clock`` is a zero-arg
    callable returning the current time — pass ``lambda: sim.now``.

    Subscribers (``subscribe(fn)``) are called with each
    :class:`Transition` after the state has changed; this is how the
    viceroy learns to issue disconnected upcalls and trigger reintegration.
    """

    def __init__(self, clock, name="connection",
                 degrade_after=DEFAULT_DEGRADE_AFTER,
                 disconnect_after=DEFAULT_DISCONNECT_AFTER,
                 recover_after=DEFAULT_RECOVER_AFTER):
        if degrade_after < 1:
            raise OdysseyError(f"degrade_after must be >= 1, got {degrade_after!r}")
        if disconnect_after <= degrade_after:
            raise OdysseyError(
                f"disconnect_after ({disconnect_after!r}) must exceed "
                f"degrade_after ({degrade_after!r})"
            )
        if recover_after < 1:
            raise OdysseyError(f"recover_after must be >= 1, got {recover_after!r}")
        self.clock = clock
        self.name = name
        self.degrade_after = degrade_after
        self.disconnect_after = disconnect_after
        self.recover_after = recover_after
        self.state = ConnState.CONNECTED
        self.transitions = []
        self.successes = 0
        self.failures = 0
        self.probe_successes = 0
        self.probe_failures = 0
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._entered_state_at = clock()
        self._listeners = []

    def __repr__(self):
        return f"<ConnectivityTracker {self.name!r} {self.state}>"

    # -- queries ------------------------------------------------------------

    @property
    def offline(self):
        """True while fetches must not touch the network (degraded service).

        Covers RECONNECTING as well as DISCONNECTED: until recovery is
        confirmed, real traffic stays off the link (probes re-establish
        trust) and mutating operations keep queueing so reintegration
        replays them in order ahead of new writes.
        """
        return self.state in (ConnState.DISCONNECTED, ConnState.RECONNECTING)

    def time_in_state(self):
        """Seconds spent in the current state."""
        return self.clock() - self._entered_state_at

    def subscribe(self, fn):
        """Call ``fn(transition)`` after every state change."""
        self._listeners.append(fn)

    # -- evidence -----------------------------------------------------------

    def note_success(self, probe=False):
        """An RPC (or heartbeat probe) completed over this connection."""
        self.successes += 1
        if probe:
            self.probe_successes += 1
        self._consecutive_failures = 0
        self._consecutive_successes += 1
        if self.state is ConnState.DISCONNECTED:
            self._move(ConnState.RECONNECTING, "first success after outage")
        if (self.state in (ConnState.DEGRADED, ConnState.RECONNECTING)
                and self._consecutive_successes >= self.recover_after):
            self._move(ConnState.CONNECTED,
                       f"{self._consecutive_successes} consecutive successes")

    def note_failure(self, probe=False):
        """An RPC (or heartbeat probe) timed out over this connection."""
        self.failures += 1
        if probe:
            self.probe_failures += 1
        self._consecutive_successes = 0
        self._consecutive_failures += 1
        if self.state is ConnState.RECONNECTING:
            self._move(ConnState.DISCONNECTED, "relapse while reconnecting")
            return
        if (self.state is ConnState.CONNECTED
                and self._consecutive_failures >= self.degrade_after):
            self._move(ConnState.DEGRADED,
                       f"{self._consecutive_failures} consecutive failures")
        if (self.state is ConnState.DEGRADED
                and self._consecutive_failures >= self.disconnect_after):
            self._move(ConnState.DISCONNECTED,
                       f"{self._consecutive_failures} consecutive failures")

    # -- machinery ----------------------------------------------------------

    def _move(self, target, reason):
        if target not in VALID_TRANSITIONS[self.state]:
            raise OdysseyError(
                f"illegal connectivity transition {self.state} -> {target}"
            )
        transition = Transition(self.clock(), self.state, target, reason)
        self.state = target
        self._entered_state_at = transition.time
        self.transitions.append(transition)
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("connectivity.transitions", target=target.value)
            rec.event("connectivity.transition", connection=self.name,
                      source=transition.source.value, target=target.value,
                      reason=reason)
        for listener in self._listeners:
            listener(transition)
