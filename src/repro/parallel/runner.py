"""The trial runner: fan independent trial units across CPU cores.

The paper's methodology (§6.2) makes every figure "the mean of five
trials", each independently seeded — an embarrassingly parallel workload
the experiment layer historically ran serially.  This module is the one
place that loop now lives:

- a :class:`TrialUnit` names one run — ``(experiment, params, seed)`` —
  where ``experiment`` keys :data:`TRIAL_FUNCTIONS` and ``seed`` is the
  trial's integer master seed (see :func:`trial_seeds`);
- :func:`run_units` executes a list of units, serially (``jobs=1``, the
  default) or across a process pool, and **always returns results in
  unit order** — completion order never leaks out, so every figure,
  table, and golden series fingerprint is byte-identical at any jobs
  count;
- an optional :class:`~repro.parallel.cache.ResultCache` short-circuits
  units whose results are already on disk.

Determinism rests on two properties the rest of the tree guarantees:
trials are hermetic (each builds its own simulator, network, and
:class:`~repro.sim.rng.RngRegistry` from the unit alone), and child
seeds derive from ``(master_seed, name)`` only — never from spawn order
(:meth:`RngRegistry.spawn_seed`), so workers can be handed bare ints.

Telemetry: with a live recorder and ``jobs > 1``, each worker runs its
unit under its own recorder and ships the event shard back; the parent
absorbs shards in unit order, labelling every event with the worker's
pid.  Cache lookups are bypassed while telemetry is enabled — an
observability run must actually execute to emit its events.
"""

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import ParallelError
from repro.parallel import config
from repro.sim.rng import RngRegistry

#: Registry of trial entry points, by experiment name.  Values are
#: ``"module:function"`` references so worker processes resolve the
#: callable by import instead of unpickling closures; every function
#: must accept its params as keywords plus ``seed=<int>`` and return a
#: **picklable** record (a plain dataclass or builtin, never a live
#: simulator object).
TRIAL_FUNCTIONS = {
    "supply": "repro.experiments.supply:run_supply_trial",
    "demand": "repro.experiments.demand:run_demand_trial",
    "adaptation": "repro.experiments.adaptation:run_adaptation_trial",
    "video": "repro.experiments.video:video_trial_outcome",
    "web": "repro.experiments.web:web_trial_outcome",
    "speech": "repro.experiments.speech:speech_trial_outcome",
    "concurrent": "repro.experiments.concurrent:concurrent_trial_outcome",
    "turbulence": "repro.experiments.turbulence:impulse_visibility",
    "robustness": "repro.experiments.robustness:run_robustness_trial",
    "disconnected": "repro.experiments.disconnected:run_disconnected_trial",
    "fleet": "repro.fleet.shard:run_fleet_shard",
}

#: Sentinel distinguishing "use the configured cache" from "no cache".
CONFIGURED = object()


@dataclass(frozen=True)
class TrialUnit:
    """One independent trial: everything a worker needs to reproduce it."""

    experiment: str
    params: dict = field(default_factory=dict)
    seed: int = 0


def trial_seeds(trials, master_seed=0):
    """Per-trial master seeds, matching :func:`seeded_rngs` spawn order.

    ``RngRegistry(seed_i)`` for each returned ``seed_i`` is exactly the
    registry ``seeded_rngs(trials, master_seed)[i]`` would hand a serial
    loop, so routing a loop through the runner changes no number.
    """
    base = RngRegistry(master_seed)
    return [base.spawn_seed(f"trial-{i}") for i in range(trials)]


def register_trial_function(experiment, reference):
    """Add/replace a registry entry (``"module:function"``).  For tests
    and out-of-tree experiments; returns the previous reference."""
    previous = TRIAL_FUNCTIONS.get(experiment)
    TRIAL_FUNCTIONS[experiment] = reference
    return previous


def resolve_trial_function(experiment):
    """Import and return the registered trial callable for ``experiment``."""
    reference = TRIAL_FUNCTIONS.get(experiment)
    if reference is None:
        raise ParallelError(
            f"unknown experiment {experiment!r}; known: "
            f"{sorted(TRIAL_FUNCTIONS)}"
        )
    modname, _, fnname = reference.partition(":")
    try:
        module = importlib.import_module(modname)
        return getattr(module, fnname)
    except (ImportError, AttributeError) as exc:
        raise ParallelError(
            f"cannot resolve trial function {reference!r} for "
            f"{experiment!r}: {exc}"
        ) from exc


def _execute_payload(payload):
    """Worker entry point: run one unit, optionally capturing telemetry.

    Module-level (picklable by reference) and fed only plain data, so it
    works under both fork and spawn start methods.
    """
    experiment, params, seed, capture = payload
    fn = resolve_trial_function(experiment)
    if not capture:
        return fn(**params, seed=seed), None, os.getpid()
    with telemetry.enabled() as rec:
        value = fn(**params, seed=seed)
    return value, list(rec.trace.events()), os.getpid()


def _abort_pool(pool):
    """Tear down a pool whose worker is hung.

    ``shutdown(wait=True)`` (what the ``with`` block does) would join the
    stuck worker forever, so terminate the processes first; the joins then
    return immediately.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def run_units(units, jobs=None, cache=CONFIGURED, timeout=CONFIGURED):
    """Execute ``units``; return their results **in unit order**.

    ``jobs=None``, ``cache=CONFIGURED``, and ``timeout=CONFIGURED`` defer
    to the process-wide settings (:mod:`repro.parallel.config`); pass
    ``jobs=1`` / ``cache=None`` to force the serial, uncached path
    regardless.  Results from the pool are merged by submission index — a
    unit that finishes early never reorders anything.

    ``timeout`` is a per-unit wall-clock watchdog in seconds: a pooled
    unit whose result is not ready within ``timeout`` of the runner
    starting to wait on it gets its workers terminated and raises
    :class:`~repro.errors.ParallelError` naming the unit, so a hung
    chaos trial fails CI instead of stalling it.  The watchdog only
    applies on the pool path — a serial in-process trial cannot be
    preempted from within the same interpreter.
    """
    units = list(units)
    jobs = config.current_jobs() if jobs is None else config.resolve_jobs(jobs)
    cache = config.current_cache() if cache is CONFIGURED else cache
    timeout = config.current_timeout() if timeout is CONFIGURED \
        else config.resolve_timeout(timeout)
    rec = telemetry.RECORDER
    capture = rec.enabled
    if capture:
        # Observability runs must execute: a cache hit would silently
        # swallow the trial's event shard.
        cache = None

    results = [None] * len(units)
    if cache is not None:
        pending = []
        for index, unit in enumerate(units):
            hit, value = cache.get(unit.experiment, unit.params, unit.seed)
            if hit:
                results[index] = value
            else:
                pending.append(index)
    else:
        pending = list(range(len(units)))

    if jobs <= 1 or len(pending) <= 1:
        # Serial: run in-process, so telemetry (if any) flows straight
        # into the live recorder exactly as it always has.
        for index in pending:
            unit = units[index]
            fn = resolve_trial_function(unit.experiment)
            results[index] = fn(**unit.params, seed=unit.seed)
    else:
        payloads = [
            (units[i].experiment, dict(units[i].params), units[i].seed,
             capture)
            for i in pending
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [pool.submit(_execute_payload, p) for p in payloads]
            # Deterministic merge: collect by submission order.  Shards
            # are absorbed in the same pass, so the merged event stream
            # is ordered by unit, then by each unit's own emission order.
            for index, future in zip(pending, futures):
                try:
                    value, events, worker = future.result(timeout=timeout)
                except _FutureTimeout:
                    _abort_pool(pool)
                    unit = units[index]
                    raise ParallelError(
                        f"trial unit {unit.experiment!r} (seed {unit.seed}, "
                        f"params {sorted(unit.params)}) exceeded the "
                        f"{timeout:g} s wall-clock watchdog"
                    ) from None
                if events:
                    rec.absorb(events, worker=worker)
                results[index] = value

    if cache is not None:
        for index in pending:
            unit = units[index]
            cache.put(unit.experiment, unit.params, unit.seed, results[index])
    return results


def run_trials(experiment, params, trials, master_seed=0, jobs=None,
               cache=CONFIGURED):
    """One experiment cell: ``trials`` seeded units, results in trial order."""
    units = [TrialUnit(experiment, params, seed)
             for seed in trial_seeds(trials, master_seed)]
    return run_units(units, jobs=jobs, cache=cache)


def chunked(values, size):
    """Split a flat result list back into per-cell chunks of ``size``."""
    if size <= 0:
        raise ParallelError(f"chunk size must be positive, got {size!r}")
    return [values[i:i + size] for i in range(0, len(values), size)]
