"""On-disk result cache for experiment trials.

Every trial the runner executes is a pure function of its unit —
``(experiment, params, seed)`` — and of the code that interprets it, so
its result can be memoized on disk.  The cache key folds all four in:

- the experiment name (the :data:`~repro.parallel.runner.TRIAL_FUNCTIONS`
  registry key),
- the canonicalized parameter mapping (JSON with sorted keys; non-JSON
  values such as fault plans hash through their pickle bytes, so two
  structurally different plans never collide on a pretty ``repr``),
- the trial's integer master seed,
- a :func:`code_fingerprint` over every ``.py`` file under ``src/repro``
  — editing *any* source file changes the key, so a stale result can
  never satisfy a lookup after the code that produced it changed.

Entries are individual pickle files under the cache root (default
``.repro-cache/``, overridable via ``$REPRO_CACHE_DIR``), written to a
temporary name and atomically renamed so concurrent runs never observe a
torn entry.  Unreadable or stale entries are treated as misses; nothing
here can fail an experiment, only re-run it.
"""

import hashlib
import json
import os
import pickle

CACHE_SCHEMA = "repro-result-cache/1"

#: Cache directory created next to wherever experiments are run.
DEFAULT_CACHE_DIR = ".repro-cache"

_SUFFIX = ".pkl"


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache/`` under the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") \
        or os.path.join(os.getcwd(), DEFAULT_CACHE_DIR)


def code_fingerprint(root=None):
    """Digest of every ``.py`` file (path + contents) under ``root``.

    ``root`` defaults to the installed ``repro`` package directory.  The
    walk is sorted so the digest is stable across filesystems, and
    ``__pycache__`` is skipped so byte-compilation cannot perturb it.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.abspath(root)
    digest = hashlib.blake2b(digest_size=16)
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


def _canonical(obj):
    """Insertion-order-independent form of ``obj``, fit for hashing.

    Raw pickle bytes encode dict insertion order, so two semantically
    equal objects whose nested dicts were built in different orders would
    hash differently — a silent cache miss.  Mappings are therefore
    rewritten as key-sorted pairs (recursively, including inside object
    ``__dict__``/``__slots__`` state), sets are sorted, and sequences keep
    their order but canonicalize their elements.  Anything else pickles
    as-is — atoms have no insertion order to scrub.
    """
    if isinstance(obj, dict):
        pairs = sorted(
            ((repr(key), _canonical(key), _canonical(value))
             for key, value in obj.items()),
            key=lambda pair: pair[0],
        )
        return ("__mapping__", type(obj).__qualname__, tuple(pairs))
    if isinstance(obj, (list, tuple)):
        return ("__sequence__", type(obj).__qualname__,
                tuple(_canonical(item) for item in obj))
    if isinstance(obj, (set, frozenset)):
        members = sorted((repr(item), _canonical(item)) for item in obj)
        return ("__set__", type(obj).__qualname__, tuple(members))
    state = getattr(obj, "__dict__", None)
    if state:
        return ("__object__", type(obj).__qualname__, _canonical(state))
    slots = getattr(type(obj), "__slots__", None)
    if slots and not isinstance(obj, (str, bytes, int, float, bool, complex)):
        fields = {name: getattr(obj, name)
                  for name in slots if hasattr(obj, name)}
        return ("__object__", type(obj).__qualname__, _canonical(fields))
    return obj


def canonical_params(params):
    """Deterministic text form of a parameter mapping, for hashing.

    JSON-native values serialize directly (sorted keys); anything else —
    fault plans, retry policies, replay traces — contributes a digest of
    the pickle bytes of its :func:`_canonical` form, which encodes actual
    field values (rather than whatever ``repr`` chooses to show) and is
    independent of dict insertion order.
    """

    def _opaque(obj):
        blob = pickle.dumps(_canonical(obj), protocol=4)
        return {
            "__opaque__": type(obj).__qualname__,
            "blake2b": hashlib.blake2b(blob, digest_size=16).hexdigest(),
        }

    return json.dumps(params, sort_keys=True, default=_opaque)


class ResultCache:
    """Memoized trial results under one directory, one code fingerprint.

    ``fingerprint`` is computed once at construction; a long-lived cache
    object therefore represents "the code as it was when this run
    started", which is exactly the invalidation unit we want — the next
    invocation recomputes it and stops hitting stale entries.
    """

    def __init__(self, root=None, fingerprint=None):
        self.root = os.path.abspath(root or default_cache_dir())
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, experiment, params, seed):
        """Hex digest naming the entry for one trial unit."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(json.dumps({
            "schema": CACHE_SCHEMA,
            "experiment": experiment,
            "seed": seed,
            "code": self.fingerprint,
        }, sort_keys=True).encode("utf-8"))
        digest.update(canonical_params(params).encode("utf-8"))
        return digest.hexdigest()

    def _path(self, experiment, key):
        return os.path.join(self.root, f"{experiment}-{key}{_SUFFIX}")

    def get(self, experiment, params, seed):
        """``(hit, value)`` — a corrupt or missing entry is just a miss."""
        path = self._path(experiment, self.key(experiment, params, seed))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, experiment, params, seed, value):
        """Store one trial result (atomic rename; last writer wins)."""
        path = self._path(experiment, self.key(experiment, params, seed))
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=4)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _entries(self):
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in sorted(names):
            if name.endswith(_SUFFIX):
                yield name

    def stats(self):
        """Entry/byte counts on disk plus this object's hit/miss tallies."""
        entries = 0
        nbytes = 0
        by_experiment = {}
        for name in self._entries():
            entries += 1
            try:
                nbytes += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                pass
            experiment = name[:-len(_SUFFIX)].rsplit("-", 1)[0]
            by_experiment[experiment] = by_experiment.get(experiment, 0) + 1
        return {
            "root": self.root,
            "entries": entries,
            "bytes": nbytes,
            "experiments": by_experiment,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self):
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for name in list(self._entries()):
            try:
                os.unlink(os.path.join(self.root, name))
                removed += 1
            except OSError:
                pass
        return removed
