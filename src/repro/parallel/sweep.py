"""The representative evaluation sweep, as one flat unit list.

``benchmarks/test_bench_suite.py`` times this sweep to produce the
``suite_wall_seconds`` headline metric — the wall-clock cost of the
evaluation pipeline itself, the quantity parallel trial execution
exists to shrink.  The sweep samples every fast experiment family
(supply, demand, speech, web, video, adaptation, turbulence) across
waveforms and seeds; the 15-minute concurrent-scenario trials are
deliberately excluded because a single ~4 s unit would dominate the
parallel critical path and turn the benchmark into a measurement of one
trial rather than of the fan-out.
"""

from repro.parallel.runner import TrialUnit, run_units, trial_seeds

#: Waveforms the web cells sweep (a fast, contrasting pair).
_WEB_WAVEFORMS = ("step-up", "impulse-down")

#: Impulse widths the turbulence cells sweep (sharpest + reference).
_TURBULENCE_WIDTHS = (0.5, 2.0)


def sweep_units(trials=3, master_seed=0):
    """Build the sweep's trial units, in deterministic order."""
    from repro.experiments.supply import REFERENCE_WAVEFORMS

    seeds = trial_seeds(trials, master_seed)
    units = []
    for waveform in REFERENCE_WAVEFORMS:
        units.extend(TrialUnit("supply", {"waveform_name": waveform}, seed)
                     for seed in seeds)
    units.extend(TrialUnit("demand", {"utilization": 0.45}, seed)
                 for seed in seeds)
    for waveform in REFERENCE_WAVEFORMS:
        units.extend(
            TrialUnit("speech",
                      {"waveform_name": waveform, "strategy": "adaptive"},
                      seed)
            for seed in seeds)
    for waveform in _WEB_WAVEFORMS:
        units.extend(
            TrialUnit("web",
                      {"waveform_name": waveform, "strategy": "adaptive"},
                      seed)
            for seed in seeds)
    units.extend(
        TrialUnit("video",
                  {"waveform_name": "step-up", "strategy": "adaptive"},
                  seed)
        for seed in seeds)
    units.extend(TrialUnit("adaptation", {"waveform_name": "step-up"}, seed)
                 for seed in seeds)
    for width in _TURBULENCE_WIDTHS:
        units.extend(TrialUnit("turbulence", {"width": width}, seed)
                     for seed in seeds)
    return units


def run_sweep(trials=3, master_seed=0, jobs=None, cache=None):
    """Execute the sweep; returns the flat result list (unit order)."""
    return run_units(sweep_units(trials, master_seed), jobs=jobs, cache=cache)
