"""Parallel trial execution with deterministic merge and a result cache.

Every figure in the paper is "the mean of five trials", each
independently seeded (§6.2); the full reproduction sweeps that across
waveforms, policies, and ablations.  This package makes that pipeline
scale with cores **without changing a single reported number**:

- :mod:`repro.parallel.runner` — the process-pool trial runner.  Units
  are ``(experiment, params, seed)``; results always come back in unit
  order, so any figure regenerated at ``--jobs 8`` is byte-identical to
  the serial run (the ``tests/test_sim_determinism.py`` goldens hold at
  every jobs count).
- :mod:`repro.parallel.cache` — the on-disk result cache
  (``.repro-cache/``), keyed by experiment + canonical params + seed +
  a fingerprint of every source file under ``src/repro``.  Unchanged
  experiments re-run as cache hits; touching any source file invalidates
  every entry it could have influenced.
- :mod:`repro.parallel.config` — process-wide ``jobs``/``cache``
  settings the CLI installs (scoped via :func:`~repro.parallel.config.overrides`)
  and the runner consults.
- :mod:`repro.parallel.sweep` — the representative evaluation sweep the
  ``suite_wall_seconds`` benchmark times.

See ``docs/architecture.md`` §12 for the determinism argument and the
cache key scheme.
"""

from repro.parallel.cache import (
    ResultCache,
    canonical_params,
    code_fingerprint,
    default_cache_dir,
)
from repro.parallel.config import (
    configure,
    current_cache,
    current_jobs,
    current_timeout,
    overrides,
    resolve_jobs,
    resolve_timeout,
)
from repro.parallel.runner import (
    CONFIGURED,
    TRIAL_FUNCTIONS,
    TrialUnit,
    chunked,
    register_trial_function,
    resolve_trial_function,
    run_trials,
    run_units,
    trial_seeds,
)
from repro.parallel.sweep import run_sweep, sweep_units

__all__ = [
    "ResultCache", "canonical_params", "code_fingerprint",
    "default_cache_dir",
    "configure", "current_cache", "current_jobs", "current_timeout",
    "overrides", "resolve_jobs", "resolve_timeout",
    "CONFIGURED", "TRIAL_FUNCTIONS", "TrialUnit", "chunked",
    "register_trial_function", "resolve_trial_function",
    "run_trials", "run_units", "trial_seeds",
    "run_sweep", "sweep_units",
]
