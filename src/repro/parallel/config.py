"""Process-wide execution settings for the trial runner.

The experiment layer calls :func:`~repro.parallel.runner.run_units`
without threading ``jobs``/``cache`` arguments through every table and
figure entry point; instead the CLI (or a test) installs the settings
here and the runner consults them.  ``jobs`` is the worker-process count
(1 = serial, 0 = one per CPU core) and ``cache`` is a
:class:`~repro.parallel.cache.ResultCache` or ``None`` (caching off).

The CLI scopes its settings with :func:`overrides` so a command never
leaks configuration into the importing process — important for the test
suite, where one test drives the CLI and the next calls the experiment
layer directly.
"""

import os
from contextlib import contextmanager

from repro.errors import ParallelError

_UNSET = object()

#: Serial by default: byte-identical to the historical single-core path,
#: and safe inside processes that cannot fork worker pools.
DEFAULT_JOBS = 1

_state = {"jobs": DEFAULT_JOBS, "cache": None, "timeout": None}


def resolve_jobs(jobs):
    """Normalize a jobs request: ``0`` (or negative) means one per core."""
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ParallelError(f"jobs must be an integer, got {jobs!r}") from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def resolve_timeout(timeout):
    """Normalize a per-unit watchdog: ``None``/``0`` disable it."""
    if timeout is None:
        return None
    try:
        timeout = float(timeout)
    except (TypeError, ValueError):
        raise ParallelError(
            f"timeout must be a number of seconds, got {timeout!r}"
        ) from None
    if timeout < 0:
        raise ParallelError(f"timeout must be >= 0, got {timeout!r}")
    return timeout or None


def configure(jobs=_UNSET, cache=_UNSET, timeout=_UNSET):
    """Install new process-wide settings (omitted fields keep their value)."""
    if jobs is not _UNSET:
        _state["jobs"] = resolve_jobs(jobs)
    if cache is not _UNSET:
        _state["cache"] = cache
    if timeout is not _UNSET:
        _state["timeout"] = resolve_timeout(timeout)


def current_jobs():
    """The configured worker-process count (always >= 1)."""
    return _state["jobs"]


def current_cache():
    """The configured result cache, or ``None`` when caching is off."""
    return _state["cache"]


def current_timeout():
    """The configured per-unit wall-clock watchdog in seconds, or ``None``."""
    return _state["timeout"]


@contextmanager
def overrides(jobs=_UNSET, cache=_UNSET, timeout=_UNSET):
    """Apply settings inside a ``with`` block, restoring the old ones after."""
    saved = dict(_state)
    try:
        configure(jobs=jobs, cache=cache, timeout=timeout)
        yield
    finally:
        _state.clear()
        _state.update(saved)
