"""Synthetic mobility scenarios beyond the paper's fixed traces.

The paper evaluates on idealized waveforms plus one hand-built urban walk
(Fig. 13).  For robustness studies this module generates whole families of
scenario traces from a small Markov model of wireless coverage: a walker
moves between coverage *zones* (good, degraded, shadow), each with its own
bandwidth and dwell-time distribution.  Traces are seeded and fully
reproducible; the paper's own urban walk is expressible as (and sanity-
checked against) one instance.

This mirrors how the trace-modulation methodology was actually used —
Noble et al.'s SIGCOMM'97 companion paper collected real walking traces;
lacking those recordings, we generate statistically similar ones.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sim.rng import RngRegistry
from repro.trace.replay import ReplayTrace, Segment
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, ONE_WAY_LATENCY

#: Slack allowed when checking that transition probabilities sum to one.
PROBABILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Zone:
    """One coverage state of the mobility model."""

    name: str
    bandwidth: float
    mean_dwell_seconds: float
    min_dwell_seconds: float = 5.0

    def __post_init__(self):
        if self.bandwidth < 0:
            raise ReproError(f"zone {self.name!r}: negative bandwidth")
        if self.mean_dwell_seconds <= 0:
            raise ReproError(f"zone {self.name!r}: dwell must be positive")


@dataclass
class MobilityModel:
    """A Markov chain over coverage zones.

    ``transitions[zone_name]`` maps successor zone names to probabilities
    (they must sum to ~1).  Dwell times are exponential around each zone's
    mean, floored at its minimum (radio handoff granularity).
    """

    zones: dict = field(default_factory=dict)  # name -> Zone
    transitions: dict = field(default_factory=dict)
    start: str = None

    def add_zone(self, zone, successors):
        self.zones[zone.name] = zone
        self.transitions[zone.name] = dict(successors)
        if self.start is None:
            self.start = zone.name
        return self

    def validate(self):
        if not self.zones:
            raise ReproError("mobility model has no zones")
        for name, successors in self.transitions.items():
            total = sum(successors.values())
            if abs(total - 1.0) > PROBABILITY_TOLERANCE:
                raise ReproError(
                    f"zone {name!r}: successor probabilities sum to {total}"
                )
            for successor in successors:
                if successor not in self.zones:
                    raise ReproError(
                        f"zone {name!r} references unknown zone {successor!r}"
                    )
        if self.start not in self.zones:
            raise ReproError(f"unknown start zone {self.start!r}")

    def generate(self, duration_seconds, seed=0, latency=ONE_WAY_LATENCY,
                 name=None):
        """Walk the chain for ``duration_seconds``; returns a ReplayTrace."""
        self.validate()
        rng = (seed if isinstance(seed, RngRegistry) else RngRegistry(seed)) \
            .stream("mobility")
        segments = []
        current = self.start
        elapsed = 0.0
        while elapsed < duration_seconds:
            zone = self.zones[current]
            dwell = max(rng.expovariate(1.0 / zone.mean_dwell_seconds),
                        zone.min_dwell_seconds)
            dwell = min(dwell, duration_seconds - elapsed)
            if dwell > 0:
                segments.append(Segment(dwell, zone.bandwidth, latency))
                elapsed += dwell
            successors = self.transitions[current]
            pick = rng.random()
            cumulative = 0.0
            for successor, probability in successors.items():
                cumulative += probability
                if pick <= cumulative:
                    current = successor
                    break
        return ReplayTrace(segments, name=name or "generated-scenario")


def robustness_model(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH):
    """Adversarial coverage for fault-injection studies: deep, frequent fades.

    Wide swings with real near-dead stretches — the regime in which the
    connection-lifecycle machinery (timeout/retry, teardown, failover) is
    exercised rather than merely present.  Injected faults (blackouts,
    server stalls; see :mod:`repro.faults`) ride on top of this family in
    ``benchmarks/test_bench_robustness.py``.
    """
    model = MobilityModel()
    model.add_zone(
        Zone("connected", high, mean_dwell_seconds=60.0),
        {"fade": 0.6, "dead-spot": 0.4},
    )
    model.add_zone(
        Zone("fade", low / 2, mean_dwell_seconds=30.0),
        {"connected": 0.7, "dead-spot": 0.3},
    )
    model.add_zone(
        Zone("dead-spot", low / 8, mean_dwell_seconds=15.0,
             min_dwell_seconds=3.0),
        {"connected": 0.5, "fade": 0.5},
    )
    return model


def urban_model(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH):
    """City walking: good coverage with frequent short shadows.

    Statistically similar to Fig. 13's walk: mostly connected, one-minute
    scale swings, occasional long building shadows.
    """
    model = MobilityModel()
    model.add_zone(
        Zone("street", high, mean_dwell_seconds=90.0),
        {"intersection": 0.7, "building-shadow": 0.3},
    )
    model.add_zone(
        Zone("intersection", low, mean_dwell_seconds=45.0),
        {"street": 1.0},
    )
    model.add_zone(
        Zone("building-shadow", low, mean_dwell_seconds=180.0),
        {"street": 1.0},
    )
    return model


def highway_model(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH):
    """Driving: long well-covered stretches, brief cell-edge dips."""
    model = MobilityModel()
    model.add_zone(
        Zone("covered", high, mean_dwell_seconds=240.0),
        {"cell-edge": 1.0},
    )
    model.add_zone(
        Zone("cell-edge", low, mean_dwell_seconds=20.0, min_dwell_seconds=3.0),
        {"covered": 0.9, "tunnel": 0.1},
    )
    model.add_zone(
        Zone("tunnel", low / 4, mean_dwell_seconds=30.0),
        {"covered": 1.0},
    )
    return model


def office_model(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH):
    """Indoor WaveLAN: good almost everywhere, dead spots in stairwells."""
    model = MobilityModel()
    model.add_zone(
        Zone("office", high, mean_dwell_seconds=180.0),
        {"corridor": 1.0},
    )
    model.add_zone(
        Zone("corridor", (low + high) / 2, mean_dwell_seconds=30.0),
        {"office": 0.8, "stairwell": 0.2},
    )
    model.add_zone(
        Zone("stairwell", low / 2, mean_dwell_seconds=25.0),
        {"corridor": 1.0},
    )
    return model


#: Named scenario families for the CLI and robustness benchmarks.
SCENARIO_MODELS = {
    "urban": urban_model,
    "highway": highway_model,
    "office": office_model,
    "robustness": robustness_model,
}


def generate_scenario(family, duration_seconds=900.0, seed=0):
    """Generate a seeded trace from a named scenario family."""
    try:
        factory = SCENARIO_MODELS[family]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_MODELS))
        raise ReproError(f"unknown scenario family {family!r}; known: {known}") \
            from None
    return factory().generate(duration_seconds, seed=seed,
                              name=f"{family}-{seed}")
