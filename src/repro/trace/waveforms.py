"""Reference waveforms and scenario traces (paper Figs. 7 and 13).

The paper quantifies agility with four idealized bandwidth waveforms, each
60 seconds long over two modulated levels:

- **Step-Up** / **Step-Down** — a single abrupt transition at the midpoint.
- **Impulse-Up** / **Impulse-Down** — a two-second excursion in the middle,
  approximating an ideal impulse.

The modulated levels are the paper's (§6.1.3): 120 KB/s high, 40 KB/s low,
with a 21 ms protocol round-trip (10.5 ms one-way here).  The 15-minute
urban-walk trace of Fig. 13 drives the concurrency experiment: the user
begins well connected, crosses a region of intermittent quality, spends four
minutes in the radio shadow of a large building, and finally returns to good
connectivity.
"""

from repro.errors import ReproError
from repro.trace.replay import ReplayTrace, Segment

KB = 1024
#: High modulated bandwidth: 120 KB/s (paper §6.1.3).
HIGH_BANDWIDTH = 120 * KB
#: Low modulated bandwidth: 40 KB/s (paper §6.1.3).
LOW_BANDWIDTH = 40 * KB
#: One-way propagation delay giving the paper's 21 ms protocol round trip.
ONE_WAY_LATENCY = 0.0105
#: Length of each reference waveform in seconds (paper Fig. 7).
WAVEFORM_DURATION = 60.0
#: Width of the impulse excursions in seconds (paper Fig. 7).
IMPULSE_WIDTH = 2.0
#: Private 10 Mb/s Ethernet used for the web baseline, in bytes/s.
ETHERNET_BANDWIDTH = 1250 * KB
ETHERNET_LATENCY = 0.001


def constant(bandwidth, latency=ONE_WAY_LATENCY, duration=WAVEFORM_DURATION, name=None):
    """A trace holding ``bandwidth`` for ``duration`` seconds."""
    return ReplayTrace(
        [Segment(duration, bandwidth, latency)],
        name=name or f"constant({bandwidth:g})",
    )


def ethernet(duration=WAVEFORM_DURATION):
    """The unmodulated private-Ethernet baseline (paper Fig. 11, row 1)."""
    return constant(ETHERNET_BANDWIDTH, ETHERNET_LATENCY, duration, name="ethernet")


def step_up(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH, duration=WAVEFORM_DURATION,
            latency=ONE_WAY_LATENCY):
    """Step-Up: low for the first half, high for the second (Fig. 7a)."""
    half = duration / 2
    return ReplayTrace(
        [Segment(half, low, latency), Segment(half, high, latency)],
        name="step-up",
    )


def step_down(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH, duration=WAVEFORM_DURATION,
              latency=ONE_WAY_LATENCY):
    """Step-Down: high for the first half, low for the second (Fig. 7b)."""
    half = duration / 2
    return ReplayTrace(
        [Segment(half, high, latency), Segment(half, low, latency)],
        name="step-down",
    )


def impulse_up(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH, duration=WAVEFORM_DURATION,
               width=IMPULSE_WIDTH, latency=ONE_WAY_LATENCY):
    """Impulse-Up: low throughout, with a ``width``-second spike to high (Fig. 7c)."""
    if width >= duration:
        raise ReproError("impulse width must be smaller than the waveform duration")
    wing = (duration - width) / 2
    return ReplayTrace(
        [Segment(wing, low, latency), Segment(width, high, latency),
         Segment(wing, low, latency)],
        name="impulse-up",
    )


def impulse_down(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH, duration=WAVEFORM_DURATION,
                 width=IMPULSE_WIDTH, latency=ONE_WAY_LATENCY):
    """Impulse-Down: high throughout, with a ``width``-second dip to low (Fig. 7d)."""
    if width >= duration:
        raise ReproError("impulse width must be smaller than the waveform duration")
    wing = (duration - width) / 2
    return ReplayTrace(
        [Segment(wing, high, latency), Segment(width, low, latency),
         Segment(wing, high, latency)],
        name="impulse-down",
    )


#: Durations, in minutes, of the urban-walk segments (paper Fig. 13),
#: starting at high bandwidth and alternating.  Fig. 13 labels the high
#: segments 3 1 1 1 2 and the low segments 1 1 1 4; interleaved, the walk
#: reads: 3 min well connected, an intermittent region of one-minute
#: swings, the four-minute radio shadow of a large building, and a final
#: two minutes of restored connectivity.  Total: 15 minutes.
URBAN_WALK_MINUTES = (3, 1, 1, 1, 1, 1, 1, 4, 2)


def urban_walk(low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH, latency=ONE_WAY_LATENCY):
    """The 15-minute synthetic urban-scenario trace (paper Fig. 13).

    Alternates high/low starting at high; the 4-minute low segment is the
    radio shadow, and the walk ends back in good connectivity.
    """
    segments = []
    level = high
    for minutes in URBAN_WALK_MINUTES:
        segments.append(Segment(minutes * 60.0, level, latency))
        level = low if level == high else high
    return ReplayTrace(segments, name="urban-walk")


#: Registry mapping waveform names to constructors (no-argument callables).
WAVEFORMS = {
    "step-up": step_up,
    "step-down": step_down,
    "impulse-up": impulse_up,
    "impulse-down": impulse_down,
    "urban-walk": urban_walk,
    "ethernet": ethernet,
}


def waveform(name, **kwargs):
    """Construct a registered waveform by name.

    Raises :class:`~repro.errors.ReproError` for unknown names, listing the
    valid ones.
    """
    try:
        factory = WAVEFORMS[name]
    except KeyError:
        known = ", ".join(sorted(WAVEFORMS))
        raise ReproError(f"unknown waveform {name!r}; known: {known}") from None
    return factory(**kwargs)
