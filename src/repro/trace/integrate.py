"""Exact byte-count integration over piecewise-constant rate traces.

The link transmitter must answer: *starting at time t0, when will S bytes
have been serialized onto a link whose rate follows the replay trace?*  With
piecewise-constant rates the answer is exact — walk segments, accumulating
``rate × dt`` until S is consumed.  This matters at the paper's waveform
transitions: a packet straddling a step is partially sent at each rate, which
is precisely the behaviour the in-kernel delay layer exhibits.

Zero-bandwidth segments stall transmission until the next transition;
a trace that ends at zero bandwidth stalls forever (returns ``inf``).
"""

import math

from repro.errors import ReproError


def transmission_finish_time(trace, start, nbytes):
    """Time at which ``nbytes`` finish serializing when starting at ``start``.

    Parameters
    ----------
    trace:
        A :class:`~repro.trace.replay.ReplayTrace` giving rate (bytes/s) over
        time.  After its last segment the final rate holds forever.
    start:
        Transmission start time, seconds.
    nbytes:
        Number of bytes to serialize; must be >= 0.

    Returns
    -------
    float
        Absolute completion time.  ``math.inf`` if the trace pins the rate
        at zero forever before the bytes are consumed.
    """
    if nbytes < 0:
        raise ReproError(f"nbytes must be >= 0, got {nbytes!r}")
    if nbytes == 0:
        return start
    remaining = float(nbytes)
    t = start
    for seg_start, seg in trace.segment_boundaries_after(start):
        seg_end = seg_start + seg.duration
        if seg_end <= t:
            continue
        span = seg_end - t
        if seg.bandwidth > 0:
            needed = remaining / seg.bandwidth
            if needed <= span:
                return t + needed
            remaining -= seg.bandwidth * span
        t = seg_end
    # Past the end of the trace: the final segment's rate holds forever.
    final_rate = trace.segments[-1].bandwidth
    if final_rate <= 0:
        return math.inf
    return t + remaining / final_rate


def bytes_transferable(trace, start, end):
    """How many bytes a saturating sender can move in [start, end].

    The exact inverse view of :func:`transmission_finish_time`; used by
    tests as an oracle and by workload generators for pacing.
    """
    if end < start:
        raise ReproError(f"bytes_transferable: end {end!r} < start {start!r}")
    total = 0.0
    t = start
    for seg_start, seg in trace.segment_boundaries_after(start):
        seg_end = seg_start + seg.duration
        lo = max(t, seg_start)
        hi = min(end, seg_end)
        if hi > lo:
            total += seg.bandwidth * (hi - lo)
            t = hi
        if seg_end >= end:
            return total
    if t < end:
        total += trace.segments[-1].bandwidth * (end - t)
    return total
