"""Trace algebra: compose and transform replay traces.

Experiment authors build custom conditions out of the stock waveforms —
chain a priming stretch onto a generated scenario, halve a trace's
bandwidth to model a weaker radio, overlay multiplicative noise to model
fading.  All operations return new traces; traces stay immutable.
"""

from repro.errors import ReproError
from repro.sim.rng import RngRegistry
from repro.trace.replay import ReplayTrace, Segment

#: Residual segment time below which slicing stops (floating-point dust).
SLICE_EPSILON = 1e-9


def concat(*traces, name=None):
    """Play traces back to back."""
    if not traces:
        raise ReproError("concat needs at least one trace")
    segments = []
    for trace in traces:
        segments.extend(trace.segments)
    return ReplayTrace(segments, name=name or "+".join(t.name for t in traces))


def scale_bandwidth(trace, factor, name=None):
    """Multiply every segment's bandwidth by ``factor``."""
    if factor <= 0:
        raise ReproError(f"factor must be positive, got {factor!r}")
    segments = [Segment(s.duration, s.bandwidth * factor, s.latency)
                for s in trace.segments]
    return ReplayTrace(segments, name=name or f"{trace.name}*{factor:g}")


def scale_time(trace, factor, name=None):
    """Stretch (>1) or compress (<1) the trace in time."""
    if factor <= 0:
        raise ReproError(f"factor must be positive, got {factor!r}")
    segments = [Segment(s.duration * factor, s.bandwidth, s.latency)
                for s in trace.segments]
    return ReplayTrace(segments, name=name or f"{trace.name}@{factor:g}x")


def add_latency(trace, extra_seconds, name=None):
    """Add a constant to every segment's one-way latency."""
    if extra_seconds < 0:
        raise ReproError(f"extra latency must be >= 0, got {extra_seconds!r}")
    segments = [Segment(s.duration, s.bandwidth, s.latency + extra_seconds)
                for s in trace.segments]
    return ReplayTrace(segments, name=name or f"{trace.name}+lat")


def clip(trace, duration, name=None):
    """The first ``duration`` seconds of a trace."""
    if duration <= 0:
        raise ReproError(f"duration must be positive, got {duration!r}")
    segments = []
    remaining = duration
    for segment in trace.segments:
        if remaining <= 0:
            break
        take = min(segment.duration, remaining)
        segments.append(Segment(take, segment.bandwidth, segment.latency))
        remaining -= take
    if remaining > 0:
        # The trace holds its last value; materialize the tail.
        last = trace.segments[-1]
        segments.append(Segment(remaining, last.bandwidth, last.latency))
    return ReplayTrace(segments, name=name or f"{trace.name}[:{duration:g}]")


def with_fading(trace, amplitude=0.15, period=1.0, seed=0, name=None):
    """Overlay multiplicative fading noise on a trace.

    Each ``period``-second slice gets a seeded factor uniform in
    [1-amplitude, 1+amplitude] — a crude model of small-scale fading the
    idealized waveforms omit.  Transitions from the base trace are
    preserved exactly.
    """
    if not 0 <= amplitude < 1:
        raise ReproError(f"amplitude must be in [0, 1), got {amplitude!r}")
    if period <= 0:
        raise ReproError(f"period must be positive, got {period!r}")
    rng = (seed if isinstance(seed, RngRegistry) else RngRegistry(seed)) \
        .stream("fading")
    segments = []
    for segment in trace.segments:
        remaining = segment.duration
        while remaining > SLICE_EPSILON:
            slice_duration = min(period, remaining)
            factor = 1.0 + rng.uniform(-amplitude, amplitude)
            segments.append(Segment(slice_duration,
                                    segment.bandwidth * factor,
                                    segment.latency))
            remaining -= slice_duration
    return ReplayTrace(segments, name=name or f"{trace.name}~fading")
