"""Replay traces and reference waveforms (paper §6.1).

The paper evaluates agility by subjecting Odyssey to *reference waveforms* —
sharp, idealized bandwidth variations borrowed from control-systems practice
(Fig. 7) — and to a 15-minute synthetic *urban walk* trace (Fig. 13).  Both
are expressed as *replay traces*: piecewise-constant schedules of
(bandwidth, latency) that drive the trace-modulation layer.

- :class:`ReplayTrace` / :class:`Segment` — the trace data structure, with a
  text serialization matching the paper's trace-modulation daemon input.
- :mod:`repro.trace.waveforms` — constructors for Step-Up/Down,
  Impulse-Up/Down, the urban walk, constant traces, and priming extensions.
- :mod:`repro.trace.integrate` — exact integration of byte counts across
  piecewise-constant rate functions (used by the link transmitter).
"""

from repro.trace.algebra import (
    add_latency,
    clip,
    concat,
    scale_bandwidth,
    scale_time,
    with_fading,
)
from repro.trace.replay import ReplayTrace, Segment, parse_trace, serialize_trace
from repro.trace.scenarios import SCENARIO_MODELS, generate_scenario
from repro.trace.waveforms import (
    HIGH_BANDWIDTH,
    IMPULSE_WIDTH,
    LOW_BANDWIDTH,
    ONE_WAY_LATENCY,
    WAVEFORM_DURATION,
    WAVEFORMS,
    constant,
    ethernet,
    impulse_down,
    impulse_up,
    step_down,
    step_up,
    urban_walk,
    waveform,
)

__all__ = [
    "HIGH_BANDWIDTH",
    "IMPULSE_WIDTH",
    "LOW_BANDWIDTH",
    "ONE_WAY_LATENCY",
    "SCENARIO_MODELS",
    "WAVEFORMS",
    "WAVEFORM_DURATION",
    "ReplayTrace",
    "Segment",
    "add_latency",
    "clip",
    "concat",
    "constant",
    "ethernet",
    "generate_scenario",
    "impulse_down",
    "impulse_up",
    "parse_trace",
    "scale_bandwidth",
    "scale_time",
    "serialize_trace",
    "step_down",
    "step_up",
    "urban_walk",
    "waveform",
    "with_fading",
]
