"""Replay traces: piecewise-constant (bandwidth, latency) schedules.

A replay trace is the input to the trace-modulation layer (paper §6.1.2): a
list of model parameters fed to the delay layer by a user-level daemon.  Each
:class:`Segment` holds for a duration; after the last segment the trace
*holds its final values forever*, which models the daemon keeping the last
parameters in effect.

The text format, one segment per line::

    # duration_s  bandwidth_bytes_per_s  latency_s
    30.0  122880  0.0105
    30.0   40960  0.0105

Bandwidth is bytes/second; latency is the one-way propagation delay in
seconds.
"""

import bisect
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class Segment:
    """One constant-parameter stretch of a replay trace."""

    duration: float
    bandwidth: float
    latency: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ReproError(f"segment duration must be > 0, got {self.duration!r}")
        if self.bandwidth < 0:
            raise ReproError(f"segment bandwidth must be >= 0, got {self.bandwidth!r}")
        if self.latency < 0:
            raise ReproError(f"segment latency must be >= 0, got {self.latency!r}")


class ReplayTrace:
    """An immutable piecewise-constant schedule of network parameters.

    Query with :meth:`bandwidth_at` / :meth:`latency_at`; enumerate
    breakpoints with :attr:`transitions`.  Times before zero clamp to the
    first segment and times past the end clamp to the last.
    """

    def __init__(self, segments, name=None):
        segments = tuple(segments)
        if not segments:
            raise ReproError("a replay trace needs at least one segment")
        self.segments = segments
        self.name = name or "trace"
        self._starts = []
        t = 0.0
        for seg in segments:
            self._starts.append(t)
            t += seg.duration
        self.duration = t

    def __repr__(self):
        return f"<ReplayTrace {self.name!r} {len(self.segments)} segments, {self.duration:g}s>"

    def __eq__(self, other):
        if not isinstance(other, ReplayTrace):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self):
        return hash(self.segments)

    def _segment_index(self, t):
        if t <= 0:
            return 0
        # rightmost start <= t
        return min(bisect.bisect_right(self._starts, t) - 1, len(self.segments) - 1)

    def segment_at(self, t):
        """The :class:`Segment` in effect at time ``t``."""
        return self.segments[self._segment_index(t)]

    def bandwidth_at(self, t):
        """Bandwidth (bytes/s) in effect at time ``t``."""
        return self.segment_at(t).bandwidth

    def latency_at(self, t):
        """One-way latency (s) in effect at time ``t``."""
        return self.segment_at(t).latency

    @property
    def transitions(self):
        """Times at which any parameter changes, in increasing order."""
        times = []
        for i in range(1, len(self.segments)):
            prev, cur = self.segments[i - 1], self.segments[i]
            if prev.bandwidth != cur.bandwidth or prev.latency != cur.latency:
                times.append(self._starts[i])
        return times

    def segment_boundaries_after(self, t):
        """Yield (start_time, segment) pairs covering time ``t`` onward.

        The first yielded pair covers ``t``; the final segment is yielded
        last and should be treated as holding forever.
        """
        idx = self._segment_index(t)
        for i in range(idx, len(self.segments)):
            yield self._starts[i], self.segments[i]

    def mean_bandwidth(self, start=0.0, end=None):
        """Time-averaged bandwidth over [start, end] (end defaults to trace end)."""
        if end is None:
            end = self.duration
        if end < start:
            raise ReproError(f"mean_bandwidth: end {end!r} < start {start!r}")
        if end == start:
            return self.bandwidth_at(start)
        total = 0.0
        t = start
        for seg_start, seg in self.segment_boundaries_after(start):
            seg_end = seg_start + seg.duration
            lo = max(t, seg_start)
            hi = min(end, seg_end)
            if hi > lo:
                total += seg.bandwidth * (hi - lo)
                t = hi
            if seg_end >= end:
                break
        if t < end:  # past trace end: final values hold
            total += self.segments[-1].bandwidth * (end - t)
        return total / (end - start)

    def shifted(self, delay, name=None):
        """A copy with an initial segment prepended (used for priming).

        The prepended segment copies the first segment's parameters, so the
        system sees ``delay`` extra seconds of steady state before the
        waveform proper begins.
        """
        if delay <= 0:
            return self
        first = self.segments[0]
        prefix = Segment(delay, first.bandwidth, first.latency)
        return ReplayTrace(
            (prefix, *self.segments), name=name or f"{self.name}+prime{delay:g}"
        )


def serialize_trace(trace):
    """Render a trace in the text format understood by :func:`parse_trace`."""
    lines = ["# duration_s  bandwidth_bytes_per_s  latency_s"]
    for seg in trace.segments:
        lines.append(f"{seg.duration:g}  {seg.bandwidth:g}  {seg.latency:g}")
    return "\n".join(lines) + "\n"


def parse_trace(text, name=None):
    """Parse the text format produced by :func:`serialize_trace`.

    Blank lines and ``#`` comments are ignored.  Raises
    :class:`~repro.errors.ReproError` on malformed lines.
    """
    segments = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 3:
            raise ReproError(f"trace line {lineno}: expected 3 fields, got {len(fields)}")
        try:
            duration, bandwidth, latency = (float(f) for f in fields)
        except ValueError as exc:
            raise ReproError(f"trace line {lineno}: {exc}") from exc
        segments.append(Segment(duration, bandwidth, latency))
    return ReplayTrace(segments, name=name)
