"""The transport seam: one contract, two substrates.

A *transport* moves whole :mod:`repro.rpc.messages` objects between two
endpoints and delivers arrivals to a callback.  The contract:

- ``channel.send(message)`` enqueues one message toward the peer; delivery
  is in order and at-most-once (the RPC layer above owns retries);
- arrivals invoke ``on_message(message)`` one at a time, in arrival order;
- ``channel.close()`` is idempotent; after close, ``send`` raises
  :class:`~repro.errors.TransportError` and ``on_close(exc)`` has fired
  exactly once (``exc`` is ``None`` for a deliberate close, the fatal
  exception for a transport death).

Two implementations satisfy it:

- :class:`~repro.transport.sim.SimTransport` — the deterministic path:
  messages ride as live objects inside :class:`~repro.net.packet.Packet`
  through the simulated network, exactly as the RPC stack has always sent
  them (the fig8/fig9/fleet golden fingerprints prove this path unchanged);
- :class:`~repro.transport.tcp.TcpChannel` — real asyncio TCP sockets,
  messages serialized through :mod:`repro.transport.wire`.
"""

from repro.errors import TransportError


class Channel:
    """Base class for one duplex message channel (see module docstring)."""

    def send(self, message):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    @property
    def closed(self):
        raise NotImplementedError

    def _check_open(self):
        if self.closed:
            raise TransportError(f"{self!r} is closed")
