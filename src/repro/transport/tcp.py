"""The real transport: asyncio TCP sockets speaking the wire format.

One :class:`TcpChannel` per socket: sends serialize through
:func:`~repro.transport.wire.encode_frame`; a background reader task feeds
arriving bytes — whatever chunking the kernel delivers — through a
:class:`~repro.transport.wire.FrameDecoder` and hands each completed
message to ``on_message``.  A corrupt frame, EOF, or socket error closes
the channel and fires ``on_close(exc)`` exactly once.

Unlike the simulated links, real sockets have buffers: ``send`` is
synchronous (it enqueues into the OS buffer) and ``drain`` is the
backpressure point for bulk senders.
"""

import asyncio

from repro import telemetry
from repro.errors import TransportError, WireError
from repro.transport.base import Channel
from repro.transport.wire import FrameDecoder, encode_frame

#: Bytes requested per socket read.  Big enough to drain several frames per
#: syscall under load; small enough not to stall interactive traffic.
READ_CHUNK_BYTES = 64 * 1024


class TcpChannel(Channel):
    """One live socket speaking length-prefixed wire frames.

    Construct, then :meth:`open` with the message handler to start the
    reader (``connect_tcp`` does both; server-side ``on_channel`` callbacks
    must call :meth:`open` themselves before returning).
    """

    def __init__(self, reader, writer, label="tcp"):
        self._reader = reader
        self._writer = writer
        self.label = label
        self.on_message = None
        self.on_close = None
        self.peer = writer.get_extra_info("peername")
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False
        self._close_exc = None
        self._reader_task = None
        self._done = asyncio.get_running_loop().create_future()

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return f"<TcpChannel {self.label} peer={self.peer} {state}>"

    @property
    def closed(self):
        return self._closed

    def open(self, on_message, on_close=None):
        """Install handlers and start the reader task.  Returns ``self``."""
        if self._reader_task is not None:
            raise TransportError(f"{self!r} already opened")
        self.on_message = on_message
        self.on_close = on_close
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    # -- sending ------------------------------------------------------------

    def send(self, message):
        """Serialize and enqueue one message (order-preserving).

        Raises :class:`~repro.errors.TransportError` if the channel is
        closed — including the window after ``on_close`` has fired — or if
        the kernel rejects the write; the bare asyncio/OS error never
        escapes, so senders handle exactly one exception type.
        """
        self._check_open()
        frame = encode_frame(message)
        try:
            self._writer.write(frame)
        except (ConnectionError, OSError, RuntimeError) as exc:
            # The transport died under us before the reader task noticed
            # (e.g. a racing RST): tear down now and surface the typed error.
            self._finish(exc)
            raise TransportError(
                f"{self.label}: send on dead transport ({exc})") from exc
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("transport.frames_sent", label=self.label)
            rec.count("transport.bytes_sent", len(frame), label=self.label)

    async def drain(self):
        """Backpressure point: wait for the OS send buffer to empty out.

        Bulk senders sit in this call while a slow reader catches up, so
        this is also where a peer death surfaces mid-transfer — as a typed
        :class:`~repro.errors.TransportError`, like :meth:`send`, never as
        the bare ``ConnectionResetError`` asyncio raises underneath.
        """
        if self._closed:
            raise TransportError(
                f"{self.label}: drain on closed channel"
                if self._close_exc is None else
                f"{self.label}: drain on dead transport ({self._close_exc})")
        try:
            await self._writer.drain()
        except (ConnectionError, OSError, RuntimeError) as exc:
            self._finish(exc)
            raise TransportError(
                f"{self.label}: peer died during drain ({exc})") from exc

    # -- receiving ----------------------------------------------------------

    async def _read_loop(self):
        decoder = FrameDecoder()
        exc = None
        rec = telemetry.RECORDER
        try:
            while True:
                chunk = await self._reader.read(READ_CHUNK_BYTES)
                if not chunk:
                    break  # clean EOF from the peer
                self.bytes_received += len(chunk)
                if rec.enabled:
                    rec.count("transport.bytes_received", len(chunk),
                              label=self.label)
                for message in decoder.feed(chunk):
                    self.frames_received += 1
                    if rec.enabled:
                        rec.count("transport.frames_received",
                                  label=self.label)
                    self.on_message(message)
                    if self._closed:
                        return
        except asyncio.CancelledError:
            return  # local close() cancelled us; _finish already ran
        except (WireError, ConnectionError, OSError) as exc_:
            exc = exc_
            if rec.enabled:
                rec.count("transport.read_errors", label=self.label)
        finally:
            self._finish(exc)

    # -- teardown -----------------------------------------------------------

    def close(self):
        """Close the socket (idempotent); fires ``on_close(None)``."""
        self._finish(None)

    def _finish(self, exc):
        if self._closed:
            return
        self._closed = True
        self._close_exc = exc
        if (self._reader_task is not None
                and self._reader_task is not asyncio.current_task()):
            self._reader_task.cancel()
        try:
            self._writer.close()
        except RuntimeError:
            pass  # event loop already gone (interpreter shutdown)
        if not self._done.done():
            self._done.set_result(exc)
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(exc)

    async def wait_closed(self):
        """Block until the channel is fully torn down; returns the closing
        exception (``None`` for a clean close)."""
        exc = await asyncio.shield(self._done)
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # the peer may have reset under us; the channel is dead anyway
        return exc


class TcpServer:
    """A listening socket handing accepted :class:`TcpChannel` objects to
    an ``on_channel`` callback."""

    def __init__(self, server, on_channel, label):
        self._server = server
        self.on_channel = on_channel
        self.label = label
        self.channels_accepted = 0

    @property
    def port(self):
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self):
        return self._server.sockets[0].getsockname()[0]

    def _accept(self, reader, writer):
        self.channels_accepted += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("transport.accepted", label=self.label)
        channel = TcpChannel(reader, writer, label=self.label)
        try:
            self.on_channel(channel)
        except Exception:  # noqa: BLE001 - close the socket, then re-raise as-is
            channel.close()
            raise
        if channel._reader_task is None and not channel.closed:
            channel.close()
            raise TransportError(
                f"server {self.label!r}: on_channel returned without "
                "opening the accepted channel"
            )

    async def close(self):
        self._server.close()
        await self._server.wait_closed()


async def serve_tcp(on_channel, host="127.0.0.1", port=0, label="server"):
    """Listen on ``host:port`` (0 = ephemeral).  ``on_channel(channel)``
    must call ``channel.open(...)`` before returning."""
    holder = TcpServer(None, on_channel, label)
    server = await asyncio.start_server(holder._accept, host=host, port=port)
    holder._server = server
    return holder


async def connect_tcp(host, port, on_message, on_close=None, label="client"):
    """Connect to a listener; returns an opened :class:`TcpChannel`."""
    reader, writer = await asyncio.open_connection(host, port)
    return TcpChannel(reader, writer, label=label).open(on_message, on_close)
