"""Transport: the seam that lifts the RPC stack off the simulator.

Two substrates behind one channel contract (docs/architecture.md §15):

- the **deterministic sim path** (:mod:`repro.transport.sim`) — messages
  ride as live objects through :mod:`repro.net`, exactly as the RPC stack
  always sent them; the fig8/fig9/fleet golden fingerprints prove this
  path byte-identical;
- the **real path** (:mod:`repro.transport.tcp`) — asyncio TCP sockets
  speaking the versioned, length-prefixed, checksummed wire format of
  :mod:`repro.transport.wire`, which round-trips every
  :mod:`repro.rpc.messages` dataclass.

The :mod:`repro.broker` subsystem builds a multi-client RPC broker on the
real path.  Importing this package must never perturb a simulation —
``tests/test_transport_golden.py`` holds that line.
"""

from repro.transport.base import Channel
from repro.transport.sim import (
    SimChannel,
    SimListener,
    SimTransport,
    sim_packet_size,
)
from repro.transport.tcp import (
    READ_CHUNK_BYTES,
    TcpChannel,
    TcpServer,
    connect_tcp,
    serve_tcp,
)
from repro.transport.wire import (
    FRAME_HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    MESSAGE_KINDS,
    WIRE_VERSION,
    FrameDecoder,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    try_decode_frame,
)

__all__ = [
    "FRAME_HEADER_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MESSAGE_KINDS",
    "READ_CHUNK_BYTES",
    "WIRE_VERSION",
    "Channel",
    "FrameDecoder",
    "SimChannel",
    "SimListener",
    "SimTransport",
    "TcpChannel",
    "TcpServer",
    "connect_tcp",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "serve_tcp",
    "sim_packet_size",
    "try_decode_frame",
]
