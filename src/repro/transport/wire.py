"""The wire format: versioned, length-prefixed frames for RPC messages.

The simulator passes :mod:`repro.rpc.messages` dataclasses between hosts as
live Python objects; a real socket needs bytes.  This module is the codec:

- **values** are encoded as JSON with tagged extensions, so every payload
  the sim path carries (str/int/float/bool/None, lists, dicts, tuples,
  bytes, :class:`~repro.rpc.messages.BulkSource` descriptors, and handler
  exceptions) survives the round trip *equal to what was sent*;
- **messages** are one JSON array of field values in dataclass field order,
  identified by a one-byte kind code;
- **frames** wrap a message payload in a fixed 12-byte header::

      offset  size  field
      0       2     magic  b"Od"
      2       1     version (WIRE_VERSION)
      3       1     kind    (message type code, see MESSAGE_KINDS)
      4       4     length  of payload, big-endian
      8       4     CRC-32  over bytes 2..8 of the header plus the payload
      12      n     payload (UTF-8 JSON array of field values)

The checksum covers the version, kind, and length bytes as well as the
payload, so *any* single corrupted byte — header or body — is rejected
with a typed :class:`~repro.errors.FrameError` instead of decoding into a
different message.  TCP presents frames as an arbitrary byte stream;
:class:`FrameDecoder` reassembles them across any split boundaries.
"""

import binascii
import json
import struct
from dataclasses import fields

from repro.errors import FrameError, RemoteCallError, WireError
from repro.rpc.messages import (
    BulkPush,
    BulkSource,
    CallRequest,
    CallResponse,
    Fragment,
    ServerReply,
    WindowAck,
    WindowRequest,
)

#: First bytes of every frame ("Odyssey").
MAGIC = b"Od"
#: Bumped whenever the payload encoding or field order changes.
WIRE_VERSION = 1
#: Hard ceiling on one frame's payload; a length beyond it means a corrupt
#: header (or a hostile peer), not a legitimately huge message.
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: Bytes before the payload: magic(2) + version(1) + kind(1) + length(4)
#: + crc32(4).
FRAME_HEADER_BYTES = 12

_HEADER = struct.Struct(">2sBBLL")

#: Kind code <-> message class, in wire-format order.  Codes are part of
#: the format: never renumber, only append.
MESSAGE_KINDS = (
    (1, CallRequest),
    (2, CallResponse),
    (3, WindowRequest),
    (4, Fragment),
    (5, BulkPush),
    (6, WindowAck),
    (7, ServerReply),
)

_KIND_BY_CLASS = {cls: code for code, cls in MESSAGE_KINDS}
_CLASS_BY_KIND = {code: cls for code, cls in MESSAGE_KINDS}
_FIELDS_BY_CLASS = {cls: tuple(f.name for f in fields(cls))
                    for _, cls in MESSAGE_KINDS}

#: Reserved single-key tags the value codec uses for non-JSON types.
_TAGS = ("__tuple__", "__bytes__", "__map__", "__bulk__", "__error__")


def _is_tagged(obj):
    """Whether a decoded JSON object is one of our single-key tag forms."""
    return len(obj) == 1 and next(iter(obj)) in _TAGS


def _encode_value(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise WireError(f"non-finite float {value!r} cannot cross the wire")
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": binascii.b2a_base64(bytes(value), newline=False)
                .decode("ascii")}
    if isinstance(value, dict):
        pairs = []
        plain = True
        for key, item in value.items():
            if not isinstance(key, str):
                plain = False
            pairs.append((key, _encode_value(item)))
        # A dict whose own keys collide with the tag repertoire (or whose
        # keys are not strings) is escaped into explicit pairs.
        if plain and any(k in _TAGS for k, _ in pairs):
            plain = False
        if plain:
            return dict(pairs)
        return {"__map__": [[_encode_value(k), v] for k, v in pairs]}
    if isinstance(value, BulkSource):
        return {"__bulk__": [value.transfer_id, value.nbytes,
                             _encode_value(value.meta), value.consumed]}
    if isinstance(value, BaseException):
        if isinstance(value, RemoteCallError):
            return {"__error__": [value.kind, value.message]}
        return {"__error__": [type(value).__name__, str(value)]}
    raise WireError(f"value of type {type(value).__name__} cannot cross "
                    f"the wire: {value!r}")


def _decode_value(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        if _is_tagged(value):
            tag, body = next(iter(value.items()))
            try:
                if tag == "__tuple__":
                    return tuple(_decode_value(v) for v in body)
                if tag == "__bytes__":
                    return binascii.a2b_base64(body.encode("ascii"))
                if tag == "__map__":
                    return {_decode_value(k): _decode_value(v)
                            for k, v in body}
                if tag == "__bulk__":
                    transfer_id, nbytes, meta, consumed = body
                    source = BulkSource(transfer_id, nbytes,
                                        _decode_value(meta))
                    source.consumed = consumed
                    return source
                if tag == "__error__":
                    kind, message = body
                    return RemoteCallError(kind, message)
            except (TypeError, ValueError, binascii.Error) as exc:
                raise WireError(f"malformed {tag} payload: {exc}") from exc
        return {key: _decode_value(v) for key, v in value.items()}
    raise WireError(f"unexpected JSON value {value!r}")


def encode_message(message):
    """Encode one RPC message dataclass; returns ``(kind, payload_bytes)``."""
    kind = _KIND_BY_CLASS.get(type(message))
    if kind is None:
        raise WireError(f"{type(message).__name__} is not a wire message")
    values = [_encode_value(getattr(message, name))
              for name in _FIELDS_BY_CLASS[type(message)]]
    try:
        text = json.dumps(values, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise WireError(f"message {message!r} is not wire-encodable: "
                        f"{exc}") from exc
    return kind, text.encode("utf-8")


def decode_message(kind, payload):
    """Decode a payload produced by :func:`encode_message`."""
    cls = _CLASS_BY_KIND.get(kind)
    if cls is None:
        raise WireError(f"unknown message kind {kind}")
    try:
        values = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable payload for kind {kind}: {exc}") from exc
    names = _FIELDS_BY_CLASS[cls]
    if not isinstance(values, list) or len(values) != len(names):
        raise WireError(
            f"{cls.__name__} payload carries "
            f"{len(values) if isinstance(values, list) else 'non-list'} "
            f"fields, expected {len(names)}"
        )
    return cls(**{name: _decode_value(value)
                  for name, value in zip(names, values)})


def _checksum(header_tail, payload):
    return binascii.crc32(payload, binascii.crc32(header_tail)) & 0xFFFFFFFF


def encode_frame(message):
    """One complete frame (header + payload) for ``message``."""
    kind, payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"payload of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte frame ceiling")
    header = _HEADER.pack(MAGIC, WIRE_VERSION, kind, len(payload), 0)
    crc = _checksum(header[2:8], payload)
    return _HEADER.pack(MAGIC, WIRE_VERSION, kind, len(payload), crc) + payload


def try_decode_frame(buffer):
    """Decode the first frame of ``buffer`` if it is complete.

    Returns ``(message, consumed_bytes)`` or ``None`` when more bytes are
    needed.  Raises :class:`~repro.errors.FrameError` on a frame that can
    never become valid (bad magic, wrong version, oversize length, checksum
    mismatch) — the stream is unrecoverable past that point.
    """
    view = bytes(buffer)
    if len(view) < FRAME_HEADER_BYTES:
        if view and not MAGIC.startswith(view[:2]):
            raise FrameError(f"bad frame magic {view[:2]!r}")
        return None
    magic, version, kind, length, crc = _HEADER.unpack_from(view)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise FrameError(f"unsupported wire version {version} "
                         f"(speaking {WIRE_VERSION})")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte ceiling")
    end = FRAME_HEADER_BYTES + length
    if len(view) < end:
        return None
    payload = view[FRAME_HEADER_BYTES:end]
    if _checksum(view[2:8], payload) != crc:
        raise FrameError(f"frame checksum mismatch (kind {kind}, "
                         f"{length} bytes)")
    return decode_message(kind, payload), end


def decode_frame(data):
    """Strictly decode one frame; returns ``(message, consumed_bytes)``.

    Unlike :func:`try_decode_frame`, an incomplete buffer is an error: a
    *truncated* frame raises :class:`~repro.errors.FrameError`.
    """
    result = try_decode_frame(data)
    if result is None:
        raise FrameError(f"truncated frame ({len(data)} bytes)")
    return result


class FrameDecoder:
    """Streaming reassembly: feed arbitrary chunks, get whole messages.

    TCP has no message boundaries; whatever chunking the kernel delivers,
    ``feed`` buffers it and returns every message completed so far, in
    order.  A corrupt frame raises :class:`~repro.errors.FrameError` and
    poisons the decoder — the connection must be torn down, resyncing an
    LV-framed stream past garbage is not possible.
    """

    __slots__ = ("_buffer", "_poisoned")

    def __init__(self):
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self):
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk):
        """Absorb ``chunk``; return the list of messages it completed."""
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier corrupt frame")
        self._buffer.extend(chunk)
        messages = []
        while True:
            try:
                result = try_decode_frame(self._buffer)
            except (FrameError, WireError):
                self._poisoned = True
                raise
            if result is None:
                return messages
            message, consumed = result
            del self._buffer[:consumed]
            messages.append(message)
