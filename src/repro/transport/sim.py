"""The deterministic transport: message channels over the simulated net.

The sim path has always moved RPC messages as live objects inside
:class:`~repro.net.packet.Packet`; this adapter wraps that substrate in the
:class:`~repro.transport.base.Channel` contract so the same channel-shaped
code can run on either the simulator or real sockets.  Nothing in the
existing RPC stack is rerouted through it — :class:`~repro.rpc.connection.
RpcConnection` keeps speaking packets natively, which is what keeps the
fig8/fig9/fleet golden fingerprints byte-identical.

The simulated network is a datagram service, so the adapter supplies the
connection-oriented part itself, mirroring TCP accept semantics in sim
time: ``connect`` (a generator — drive it with ``yield from``) sends an
open request to the listener's port; the listener allocates a dedicated
per-channel port, binds a server-side channel there, and replies with an
accept carrying that port.  From then on each side sends straight to the
other's private port.
"""

import itertools
from dataclasses import dataclass

from repro.errors import TransportError
from repro.net.packet import HEADER_BYTES, Packet
from repro.transport.base import Channel

_channel_ids = itertools.count(1)


@dataclass(slots=True)
class _SimOpen:
    """Connection request: answer to ``reply_port`` on ``client_host``."""

    client_host: str
    reply_port: str


@dataclass(slots=True)
class _SimAccept:
    """Connection grant: the per-channel port the client must send to."""

    channel_port: str


@dataclass(slots=True)
class _SimClose:
    """Peer closed its end of the channel."""


def sim_packet_size(message):
    """Wire size the sim charges for ``message``, matching the RPC stack.

    Data-bearing messages pay for their modeled payload (``body_bytes`` for
    calls/responses, ``nbytes`` for fragments and pushes); pure control
    messages are a bare header.
    """
    for attr in ("nbytes", "body_bytes"):
        size = getattr(message, attr, None)
        if size is not None:
            return HEADER_BYTES + size
    return HEADER_BYTES


class SimChannel(Channel):
    """One end of a sim-transport channel, bound to a private port."""

    def __init__(self, sim, host, local_port, peer_host, peer_port,
                 on_message, on_close=None):
        self.sim = sim
        self.host = host
        self.local_port = local_port
        self.peer_host = peer_host
        self.peer_port = peer_port
        self.on_message = on_message
        self.on_close = on_close
        self.messages_sent = 0
        self.messages_received = 0
        self._closed = False
        host.bind(local_port, self._on_packet)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (f"<SimChannel {self.local_port!r} -> "
                f"{self.peer_host}:{self.peer_port} {state}>")

    @property
    def closed(self):
        return self._closed

    def send(self, message):
        self._check_open()
        self.messages_sent += 1
        self.host.send(Packet(
            src=self.host.name, dst=self.peer_host, port=self.peer_port,
            size=sim_packet_size(message), payload=message,
        ))

    def close(self):
        """Close this end and notify the peer (idempotent)."""
        if self._closed:
            return
        self.host.send(Packet(
            src=self.host.name, dst=self.peer_host, port=self.peer_port,
            size=HEADER_BYTES, payload=_SimClose(),
        ))
        self._finish(None)

    def _finish(self, exc):
        self._closed = True
        self.host.unbind(self.local_port)
        if self.on_close is not None:
            self.on_close(exc)

    def _on_packet(self, packet):
        message = packet.payload
        if isinstance(message, _SimClose):
            if not self._closed:
                self._finish(None)
            return
        self.messages_received += 1
        self.on_message(message)


class SimListener:
    """Accepts sim-channel connections on a well-known port."""

    def __init__(self, sim, host, port, on_channel):
        self.sim = sim
        self.host = host
        self.port = port
        self.on_channel = on_channel
        self.accepted = 0
        self._closed = False
        host.bind(port, self._on_packet)

    def close(self):
        if not self._closed:
            self._closed = True
            self.host.unbind(self.port)

    def _on_packet(self, packet):
        request = packet.payload
        if not isinstance(request, _SimOpen):
            raise TransportError(
                f"listener {self.port!r}: unexpected payload {request!r} "
                "(data must flow on the accepted channel port)"
            )
        self.accepted += 1
        channel_port = f"{self.port}#{next(_channel_ids)}"
        channel = SimChannel(
            self.sim, self.host, channel_port,
            peer_host=request.client_host, peer_port=request.reply_port,
            on_message=None,
        )
        # The acceptor wires the handlers before any data can arrive: the
        # accept reply has not even been sent yet.
        self.on_channel(channel)
        if channel.on_message is None:
            raise TransportError(
                f"listener {self.port!r}: on_channel left the channel "
                "without an on_message handler"
            )
        self.host.send(Packet(
            src=self.host.name, dst=request.client_host,
            port=request.reply_port, size=HEADER_BYTES,
            payload=_SimAccept(channel_port),
        ))


class SimTransport:
    """Channel factory over one simulated network."""

    def __init__(self, sim, network):
        self.sim = sim
        self.network = network

    def listen(self, host, port, on_channel):
        """Accept connections on ``host:port``; ``on_channel(channel)`` must
        assign ``channel.on_message`` (and optionally ``on_close``)."""
        return SimListener(self.sim, host, port, on_channel)

    def connect(self, client_host, server_name, server_port, on_message,
                on_close=None):
        """Open a channel to a listener.  Generator — ``yield from`` it;
        returns the connected :class:`SimChannel`."""
        local_port = f"{client_host.name}/ch:{next(_channel_ids)}"
        accepted = self.sim.event(name="sim-accept")
        client_host.bind(local_port, lambda packet: accepted.succeed(packet))
        client_host.send(Packet(
            src=client_host.name, dst=server_name, port=server_port,
            size=HEADER_BYTES, payload=_SimOpen(client_host.name, local_port),
        ))
        packet = yield accepted
        grant = packet.payload
        if not isinstance(grant, _SimAccept):
            raise TransportError(f"connect to {server_name}:{server_port} "
                                 f"answered with {grant!r}")
        client_host.unbind(local_port)
        return SimChannel(
            self.sim, client_host, local_port,
            peer_host=server_name, peer_port=grant.channel_port,
            on_message=on_message, on_close=on_close,
        )
