"""Crash–recovery drills: kill a viceroy mid-run, restore it, replay.

The checkpoint/restore machinery (:meth:`~repro.core.viceroy.Viceroy
.checkpoint` / ``restore``) exists so a viceroy restart loses no deferred
disconnected-mode writes and no window registrations.  A drill *proves*
that under load, inside a live storm:

1. **snapshot** — take the JSON checkpoint and round-trip it through
   ``json.dumps`` (the drill must survive exactly what a disk write
   would);
2. **crash** — stop every heartbeat prober, fail every in-flight RPC
   with :class:`~repro.errors.RpcError` (their reply seqs move to the
   connection's abandoned set so late server replies are dropped, not
   crashed on), unregister every connection (no goodbye upcalls — a
   crash does not say goodbye), and wipe the in-memory deferred logs
   (the crash loses RAM; the checkpoint is the disk);
3. **restore** — re-adopt every connection (fresh trackers: a restarted
   viceroy re-derives link health from evidence, per ``restore``'s
   contract), restore the snapshot, and restart the heartbeats;
4. **replay** — trigger reintegration for every warden with restored
   ops whose link is not offline; wardens still dark replay on their
   RECONNECTING→CONNECTED edge as usual.

The whole drill runs atomically inside one simulation instant (schedule
it with ``sim.call_at``), so no op can slip between the snapshot and the
wipe — which is what makes "no deferred op lost or double-applied"
checkable rather than probabilistic.
"""

import json
from dataclasses import dataclass

from repro.errors import RpcError


@dataclass(frozen=True)
class DrillOutcome:
    """Picklable record of one crash–recovery drill."""

    time: float
    connections: int
    in_flight_killed: int
    registrations_before: int
    registrations_restored: int
    registrations_dropped: tuple
    deferred_before: int
    deferred_restored: int
    replays_started: int


def reset_in_flight(conn, reason="crash drill"):
    """Fail every pending RPC on ``conn`` and abandon its reply seqs.

    Failing the events delivers :class:`RpcError` at each waiter's
    ``yield`` (callers treat it like any connection reset); moving the
    seqs into the abandoned set makes the server's late replies discards
    instead of unknown-sequence errors.  Returns the number killed.
    """
    killed = 0
    for seq, waiter in list(conn._pending.items()):
        # Plain calls wait on the Event itself; windowed fetches wait on
        # the window state's ``.event``.
        event = getattr(waiter, "event", waiter)
        if not event.triggered:
            event.fail(RpcError(
                f"{conn.connection_id}: in-flight op {seq} lost ({reason})"))
        conn._abandoned.add(seq)
        killed += 1
    conn._pending.clear()
    return killed


def run_crash_drill(viceroy, reason="chaos drill"):
    """Crash and restore ``viceroy`` in place; returns a :class:`DrillOutcome`.

    Must be called from scheduler context (a ``call_at`` callback or a
    process), never across a ``yield`` — atomicity within one instant is
    part of the drill's no-loss argument.
    """
    sim = viceroy.sim
    entries = list(viceroy._connections.items())  # cid -> (conn, warden)
    wardens = viceroy._distinct_wardens()
    registrations_before = len(viceroy.registered_requests())
    deferred_before = sum(len(w.deferred) for w in wardens)

    # 1. Snapshot, round-tripped through JSON text like a real disk write.
    snapshot = json.loads(json.dumps(viceroy.checkpoint()))

    # 2. Crash: probers die, in-flight ops die, connections drop, RAM clears.
    probers = []
    killed = 0
    for cid, (conn, warden) in entries:
        if warden is not None and cid in warden._probers:
            prober = warden._stop_heartbeat(conn)
            probers.append((warden, conn, prober.interval, prober.timeout))
        killed += reset_in_flight(conn, reason=reason)
        viceroy.unregister_connection(cid, notify=False)
    for warden in wardens:
        warden.deferred.clear()

    # 3. Restore: re-adopt connections (fresh trackers), reload the
    #    snapshot, bring the heartbeats back up.
    for cid, (conn, warden) in entries:
        viceroy.register_connection(conn, warden=warden)
    restored, dropped = viceroy.restore(snapshot)
    deferred_restored = sum(len(w.deferred) for w in wardens)
    for warden, conn, interval, timeout in probers:
        warden.start_heartbeat(conn, interval=interval, timeout=timeout)

    # 4. Replay restored ops wherever the link is already usable.  A
    #    warden shared by several connections replays once; offline links
    #    replay on their reconnect edge instead.
    replays = 0
    triggered = set()
    for cid, (conn, warden) in entries:
        if warden is None or warden.name in triggered or not warden.deferred:
            continue
        tracker = viceroy.connectivity(cid)
        if tracker is not None and tracker.offline:
            continue
        triggered.add(warden.name)
        warden.on_reconnect(conn)
        replays += 1

    return DrillOutcome(
        time=sim.now,
        connections=len(entries),
        in_flight_killed=killed,
        registrations_before=registrations_before,
        registrations_restored=restored,
        registrations_dropped=tuple(dropped),
        deferred_before=deferred_before,
        deferred_restored=deferred_restored,
        replays_started=replays,
    )
