"""Fleet-scale chaos: correlated fault storms, crash–recovery drills, and
a continuous invariant auditor.

The package layers on top of :mod:`repro.faults` (single-fault windows),
:mod:`repro.fleet` (sharded populations), and the viceroy's
checkpoint/restore machinery:

- :mod:`repro.chaos.storms` — fleet-aware storm primitives and seeded,
  per-shard-deterministic :class:`ChaosProfile` compilation;
- :mod:`repro.chaos.warden` — the evidence-bearing chaos warden with the
  deferrable ``save-mark`` write;
- :mod:`repro.chaos.drill` — the mid-run viceroy crash–restore drill;
- :mod:`repro.chaos.auditor` — the continuous invariant auditor
  (deferred-op conservation, connectivity legality, upcalls answered,
  recovery/settling SLOs);
- :mod:`repro.chaos.arm` — wiring a compiled schedule into a live shard;
- :mod:`repro.chaos.harness` — the fleet-level runner and scorecard.

See ``docs/architecture.md`` §14 for the failure-drill and auditor model.
"""

from repro.chaos.arm import ChaosController, ChaosShardStats, arm_chaos
from repro.chaos.auditor import InvariantAuditor, Violation
from repro.chaos.drill import DrillOutcome, reset_in_flight, run_crash_drill
from repro.chaos.harness import (
    ChaosReport,
    chaos_units,
    run_chaos_fleet,
)
from repro.chaos.report import format_chaos_report
from repro.chaos.storms import (
    ChaosProfile,
    ClientChurn,
    FlappingLink,
    PROFILE_NAMES,
    RegionalBlackout,
    ServerPoolOutage,
    ShardChaos,
    resolve_profile,
    standard_profile,
)
from repro.chaos.warden import ChaosStreamWarden, install_mark_op

__all__ = [
    "ChaosController", "ChaosShardStats", "arm_chaos",
    "InvariantAuditor", "Violation",
    "DrillOutcome", "reset_in_flight", "run_crash_drill",
    "ChaosReport", "chaos_units", "run_chaos_fleet",
    "format_chaos_report",
    "ChaosProfile", "ClientChurn", "FlappingLink", "PROFILE_NAMES",
    "RegionalBlackout", "ServerPoolOutage", "ShardChaos",
    "resolve_profile", "standard_profile",
    "ChaosStreamWarden", "install_mark_op",
]
