"""Arming: wire a compiled :class:`ShardChaos` into a live shard world.

One call — :func:`arm_chaos` — schedules everything a shard's chaos run
needs before the simulation starts:

- the runtime fault plan (server-pool stalls) via the existing
  :class:`~repro.faults.injector.FaultInjector`;
- churn departures (cancel the client's registrations, tell the auditor,
  interrupt the app) and rejoins (restart the app, which re-registers);
- the crash–recovery drill at its scheduled instant;
- the :class:`~repro.chaos.auditor.InvariantAuditor`, attached to the
  viceroy's observer stream, every tracker, and every warden's deferred
  log, with each storm window registered for the recovery SLO.

Blackouts are *not* armed here: they were folded into the shard's trace
before the world existed (see :meth:`ShardChaos.link_plan`), which is the
only way a mid-run outage reaches the link layer deterministically.

The returned :class:`ChaosController` owns the auditor and drill outcome
and reduces the whole run to a picklable :class:`ChaosShardStats` — the
graceful-degradation scorecard one shard contributes to the fleet merge.
"""

from dataclasses import dataclass

from repro.chaos.auditor import InvariantAuditor
from repro.chaos.drill import run_crash_drill


@dataclass(frozen=True)
class ChaosShardStats:
    """One shard's chaos scorecard (picklable, fingerprint-stable)."""

    profile: str
    blackouts: int
    server_stalls: int
    churn_left: int
    churn_rejoined: int
    marks_attempted: int
    marks_deferred: int
    marks_applied: int
    ops_enqueued: int
    ops_coalesced: int
    ops_queued_at_end: int
    ops_lost: int
    fidelity_floor: float
    recovery_max_seconds: float
    violations: tuple  #: Violation.as_tuple() rows, detection order
    drill: object = None  #: DrillOutcome, or None if no drill ran


class ChaosController:
    """Holds a shard's armed chaos machinery until the run finishes."""

    def __init__(self, world, fleet, shard_chaos, profile_name):
        self.world = world
        self.fleet = fleet
        self.shard_chaos = shard_chaos
        self.profile_name = profile_name
        self.auditor = InvariantAuditor(
            clock=lambda: world.sim.now,
            recovery_slo=shard_chaos.recovery_slo,
            upcall_grace=shard_chaos.upcall_grace,
        )
        self.injector = None
        self.drill_outcome = None
        self.churn_left = 0
        self.churn_rejoined = 0

    # -- churn ----------------------------------------------------------------

    def _leave(self, client):
        if client.process is None or not client.process.alive:
            return  # already gone (or never started); nothing to tear down
        viceroy = self.world.viceroy
        for registration in viceroy.registered_requests(app=client.api.app):
            viceroy.cancel(registration.request_id)
        self.auditor.note_departure(client.api.app)
        client.stop()
        self.churn_left += 1

    def _rejoin(self, client):
        if client.process is not None and client.process.alive:
            return
        client.start()
        self.churn_rejoined += 1

    def _drill(self):
        self.drill_outcome = run_crash_drill(self.world.viceroy)

    # -- reduction ------------------------------------------------------------

    def finish(self, start, end):
        """Close the audit and reduce to :class:`ChaosShardStats`."""
        violations = self.auditor.finish(end)
        lost = sum(1 for v in violations if v.invariant == "deferred-ops")
        wardens = self.world.viceroy._distinct_wardens()
        floors = [client.min_fidelity(start, end) for client in self.fleet]
        return ChaosShardStats(
            profile=self.profile_name,
            blackouts=len(self.shard_chaos.blackouts),
            server_stalls=len(self.shard_chaos.server_stalls),
            churn_left=self.churn_left,
            churn_rejoined=self.churn_rejoined,
            marks_attempted=sum(c.marks_attempted for c in self.fleet),
            marks_deferred=sum(c.marks_deferred for c in self.fleet),
            marks_applied=sum(getattr(w, "marks_applied", 0)
                              for w in wardens),
            ops_enqueued=sum(w.deferred.enqueued for w in wardens),
            ops_coalesced=sum(w.deferred.coalesced for w in wardens),
            ops_queued_at_end=sum(len(w.deferred) for w in wardens),
            ops_lost=lost,
            fidelity_floor=min(floors) if floors else 0.0,
            recovery_max_seconds=self.auditor.max_recovery_seconds,
            violations=self.auditor.violation_tuples(),
            drill=self.drill_outcome,
        )


def arm_chaos(world, fleet, servers, shard_chaos, profile_name="chaos"):
    """Schedule a shard's storms, churn, drill, and audit; returns the
    :class:`ChaosController`.  Call after the world is built and before
    the simulation runs."""
    controller = ChaosController(world, fleet, shard_chaos, profile_name)
    sim = world.sim

    runtime = shard_chaos.runtime_plan()
    if runtime.faults:
        controller.injector = runtime.arm(
            sim, services=[server.service for server in servers],
            rng=world.rng.stream("chaos-faults"),
        )

    for leave, rejoin, client_index in shard_chaos.churn:
        if client_index >= len(fleet):
            continue
        client = fleet[client_index]
        sim.call_at(shard_chaos.absolute(leave), controller._leave, client)
        sim.call_at(shard_chaos.absolute(rejoin), controller._rejoin, client)

    if shard_chaos.drill_at is not None:
        sim.call_at(shard_chaos.absolute(shard_chaos.drill_at),
                    controller._drill)

    auditor = controller.auditor
    auditor.attach_viceroy(world.viceroy)
    for warden in world.viceroy._distinct_wardens():
        auditor.watch_warden(warden)
    for start, end in shard_chaos.storm_windows():
        auditor.note_storm(start, end)
    return controller
