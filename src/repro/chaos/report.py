"""Human-readable rendering of a chaos run (CLI and experiment docs)."""


def format_chaos_report(report, verbose=False):
    """Render a :class:`~repro.chaos.harness.ChaosReport` as text lines."""
    fleet = report.fleet
    profile = report.profile
    lines = []
    lines.append(
        f"chaos profile {profile.name!r}: {fleet.clients} clients / "
        f"{fleet.shards} shards / {fleet.duration:g} s "
        f"(seed {fleet.master_seed})"
    )
    storms = ", ".join(type(s).__name__ for s in profile.storms)
    drill = (f"drill at t={profile.drill_at:g}s" if profile.drill_at is not None
             else "no drill")
    lines.append(f"  storms: {storms or 'none'}; {drill}; "
                 f"recovery SLO {profile.recovery_slo:g} s")
    card = report.scorecard()
    lines.append(
        f"  auditor: {card['chaos_violations']} violations, "
        f"{card['chaos_ops_lost']} deferred ops lost"
    )
    lines.append(
        f"  degradation: fidelity floor {card['chaos_fidelity_floor']:.3f}, "
        f"mean fidelity {card['chaos_mean_fidelity']:.3f}, "
        f"max recovery {card['chaos_recovery_seconds']:.2f} s"
    )
    lines.append(
        f"  deferred writes: {card['chaos_marks_deferred']} marks queued "
        f"offline"
    )
    for drill_outcome in report.drills:
        lines.append(
            f"  drill @ t={drill_outcome.time:g}s: "
            f"{drill_outcome.in_flight_killed} in-flight killed, "
            f"{drill_outcome.registrations_restored}/"
            f"{drill_outcome.registrations_before} registrations restored "
            f"({len(drill_outcome.registrations_dropped)} dropped), "
            f"{drill_outcome.deferred_restored} deferred ops carried through"
        )
    if verbose or report.total_violations:
        for shard, at, invariant, subject, detail in report.violations:
            lines.append(f"  VIOLATION shard {shard} t={at:g} "
                         f"[{invariant}] {subject}: {detail}")
    lines.append(f"  fingerprint {report.fingerprint()}")
    lines.append(f"  wall {report.wall_seconds:.2f} s")
    return lines
