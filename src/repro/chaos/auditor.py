"""The continuous invariant auditor: safety properties checked as they run.

A chaos run is only evidence if something *checks* it.  The auditor
subscribes to the seams the core already exposes — viceroy observers
(:meth:`~repro.core.viceroy.Viceroy.add_observer`), tracker transition
listeners, and the deferred-log append observer — and audits four safety
properties continuously, with sim-time provenance on every violation:

1. **Deferred-op conservation** — every op ever accepted into a deferred
   log is, by the end of the run, either still queued, coalesced away by
   a newer op, or terminally replayed exactly once.  Lost ops (vanished
   without a terminal report) and double-applies both violate.
2. **Connectivity legality** — every observed tracker transition must be
   an edge of :data:`~repro.connectivity.state.VALID_TRANSITIONS`, with
   monotonically non-decreasing timestamps and a source matching the
   previously observed state.  (The tracker enforces its own edges; the
   auditor re-checks from the *outside*, so a future regression — or a
   hand-rolled tracker — cannot silently skip states.)
3. **Upcalls answered** — a violation/disconnect upcall tears down its
   registration; the owning application must re-register (a ``request``
   event), receive a teardown notice, or depart (churn) within the
   grace period.  An unanswered upcall means an application wedged.
4. **Recovery SLO** — a tracker that is offline when a storm window
   closes must reach CONNECTED within ``recovery_slo`` seconds, unless a
   later storm window re-covers it or the run ends first.  Optionally, a
   sampled estimate series must settle to a target within
   ``settling_slo`` after each storm (property tests use this; fleet
   shards leave it off).

The auditor never mutates the world and holds only plain data, so its
conclusions (:class:`Violation` tuples) are picklable and deterministic.
"""

import math
from dataclasses import dataclass

from repro.connectivity.state import VALID_TRANSITIONS, ConnState
from repro.errors import ReproError
from repro.estimation.agility import settling_time


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with simulation-time provenance."""

    time: float  #: sim time the breach was detected
    invariant: str  #: "deferred-ops" | "connectivity" | "upcall" | "recovery" | "settling"
    subject: str  #: warden / tracker / app the breach is about
    detail: str

    def as_tuple(self):
        return (round(self.time, 9), self.invariant, self.subject, self.detail)


class _TrackerWatch:
    """Transition history and legality state for one tracker."""

    __slots__ = ("name", "tracker", "state", "last_time", "history",
                 "retired_at")

    def __init__(self, name, tracker, now):
        self.name = name
        self.tracker = tracker
        self.state = tracker.state
        self.last_time = now
        self.history = [(now, tracker.state)]  # (time, state after move)
        self.retired_at = None

    def offline_at(self, t):
        """Was the tracker offline at time ``t`` (per observed history)?"""
        state = self.history[0][1]
        for at, target in self.history:
            if at > t:
                break
            state = target
        return state in (ConnState.DISCONNECTED, ConnState.RECONNECTING)

    def first_connected_after(self, t):
        """Earliest observed entry into CONNECTED at or after ``t``."""
        for at, target in self.history:
            if at >= t and target is ConnState.CONNECTED:
                return at
        return None


class _WardenWatch:
    """Deferred-op ledger for one warden's log."""

    __slots__ = ("warden", "enqueued", "coalesced")

    def __init__(self, warden):
        self.warden = warden
        self.enqueued = {}  # seq -> queued_at
        self.coalesced = set()


class InvariantAuditor:
    """Attachable, continuous checker for the chaos safety properties."""

    def __init__(self, clock, recovery_slo=None, upcall_grace=10.0,
                 settling_slo=None, settling_tolerance=0.10):
        self.clock = clock
        self.recovery_slo = recovery_slo
        self.upcall_grace = upcall_grace
        self.settling_slo = settling_slo
        self.settling_tolerance = settling_tolerance
        self.violations = []
        self._trackers = {}  # connection_id -> active _TrackerWatch
        self._retired = []  # retired _TrackerWatch list
        self._wardens = {}  # warden name -> _WardenWatch
        self._pending_upcalls = {}  # (app, request_id) -> sent time
        self._storms = []  # (start, end, target) absolute windows
        self._estimates = []  # (time, value) sampled estimate series
        self.recovery_seconds = []  # per-(storm, tracker) recovery times

    # -- wiring ---------------------------------------------------------------

    def attach_viceroy(self, viceroy):
        """Watch a viceroy: its observer stream plus every known tracker."""
        viceroy.add_observer(self._on_viceroy_event)
        for connection_id in list(viceroy._connections):
            tracker = viceroy.connectivity(connection_id)
            if tracker is not None:
                self.watch_tracker(connection_id, tracker)
        return self

    def watch_tracker(self, name, tracker):
        """Audit a tracker's transitions; supersedes any prior tracker
        observed under the same name (a restart replaced it)."""
        now = self.clock()
        old = self._trackers.get(name)
        if old is not None:
            old.retired_at = now
            self._retired.append(old)
        watch = _TrackerWatch(name, tracker, now)
        self._trackers[name] = watch
        tracker.subscribe(
            lambda transition, w=watch: self._on_transition(w, transition))

    def watch_warden(self, warden):
        """Audit a warden's deferred-op log for conservation."""
        watch = _WardenWatch(warden)
        self._wardens[warden.name] = watch
        warden.deferred.observer = (
            lambda op, replaced, w=watch: self._on_append(w, op, replaced))

    def note_storm(self, start, end, target=None):
        """Register an absolute storm window (``target``: the post-storm
        estimate level the settling check aims at, if any)."""
        self._storms.append((start, end, target))

    def note_departure(self, app, time=None):
        """An application left deliberately: its pending upcalls are moot."""
        del time
        for key in [k for k in self._pending_upcalls if k[0] == app]:
            del self._pending_upcalls[key]

    def note_estimate(self, time, value):
        """Feed one sample of the estimate series the settling check audits."""
        self._estimates.append((time, value))

    # -- event sinks ----------------------------------------------------------

    def _on_viceroy_event(self, event, **info):
        if event == "connection":
            self.watch_tracker(info["connection_id"], info["tracker"])
        elif event == "request":
            # Any new registration from an app answers its pending upcalls.
            self.note_departure(info["app"])
        elif event == "upcall":
            if info["kind"] == "teardown":
                # The connection is gone; nothing to re-register against.
                self.note_departure(info["app"])
            else:
                self._pending_upcalls[(info["app"], info["request_id"])] = \
                    info["time"]

    def _on_transition(self, watch, transition):
        now = transition.time
        if transition.target not in VALID_TRANSITIONS.get(transition.source,
                                                          ()):
            self._violate("connectivity", watch.name,
                          f"illegal edge {transition.source} -> "
                          f"{transition.target} ({transition.reason})", now)
        if transition.source is not watch.state:
            self._violate("connectivity", watch.name,
                          f"transition source {transition.source} does not "
                          f"match observed state {watch.state}", now)
        if now < watch.last_time:
            self._violate("connectivity", watch.name,
                          f"transition at t={now} precedes previous "
                          f"t={watch.last_time}", now)
        watch.state = transition.target
        watch.last_time = now
        watch.history.append((now, transition.target))

    def _on_append(self, watch, op, replaced_seq):
        watch.enqueued[op.seq] = op.queued_at
        if replaced_seq is not None:
            watch.coalesced.add(replaced_seq)

    def _violate(self, invariant, subject, detail, time=None):
        self.violations.append(Violation(
            time=self.clock() if time is None else time,
            invariant=invariant, subject=subject, detail=detail,
        ))

    # -- final sweep ----------------------------------------------------------

    def finish(self, now=None):
        """Run the end-of-run checks; returns the full violation list."""
        now = self.clock() if now is None else now
        self._finish_deferred(now)
        self._finish_upcalls(now)
        self._finish_recovery(now)
        self._finish_settling(now)
        return list(self.violations)

    def _finish_deferred(self, now):
        for name, watch in self._wardens.items():
            queued = {op.seq for op in watch.warden.deferred}
            terminal = {}
            for report in watch.warden.reintegration_reports:
                if report.status in ("applied", "conflict", "failed"):
                    terminal[report.op.seq] = terminal.get(report.op.seq, 0) + 1
                    if report.status == "failed":
                        self._violate(
                            "deferred-ops", name,
                            f"op seq {report.op.seq} ({report.op.opcode!r}) "
                            f"dropped by a failed replay at "
                            f"t={report.replayed_at}", now)
            for seq, count in terminal.items():
                if count > 1:
                    self._violate(
                        "deferred-ops", name,
                        f"op seq {seq} terminally replayed {count} times "
                        "(double apply)", now)
            lost = set(watch.enqueued) - watch.coalesced - set(terminal) \
                - queued
            for seq in sorted(lost):
                self._violate(
                    "deferred-ops", name,
                    f"op seq {seq} (queued at t={watch.enqueued[seq]}) "
                    "vanished: not queued, not coalesced, never replayed",
                    now)

    def _finish_upcalls(self, now):
        for (app, request_id), sent in sorted(self._pending_upcalls.items()):
            if now - sent > self.upcall_grace:
                self._violate(
                    "upcall", app,
                    f"upcall for request {request_id} at t={sent} never "
                    f"answered within the {self.upcall_grace:g} s grace",
                    now)

    def _all_watches(self):
        return self._retired + list(self._trackers.values())

    def _finish_recovery(self, now):
        if self.recovery_slo is None:
            return
        slo = self.recovery_slo
        starts = sorted(start for start, _, _ in self._storms)
        for _, end, _ in sorted(self._storms):
            # A later storm opening before the SLO elapses re-covers the
            # link; the deadline then belongs to *that* storm's end.
            if any(end < s <= end + slo for s in starts):
                continue
            if now < end + slo:
                continue  # not enough horizon to judge
            for watch in self._all_watches():
                if watch.retired_at is not None and watch.retired_at <= end:
                    continue  # replaced before the deadline; judge successor
                if not watch.offline_at(end):
                    continue
                recovered = watch.first_connected_after(end)
                deadline_miss = recovered is None or recovered - end > slo
                if recovered is not None:
                    self.recovery_seconds.append(recovered - end)
                if deadline_miss:
                    at = now if recovered is None else recovered
                    self._violate(
                        "recovery", watch.name,
                        f"offline at storm end t={end} and not CONNECTED "
                        f"within the {slo:g} s SLO "
                        f"(recovered: {'never' if recovered is None else recovered})",
                        at)

    def _finish_settling(self, now):
        if self.settling_slo is None or not self._estimates:
            return
        for _, end, target in sorted(self._storms):
            if target is None or now < end + self.settling_slo:
                continue
            try:
                settled = settling_time(self._estimates, end, target,
                                        tolerance=self.settling_tolerance)
            except ReproError:
                settled = math.inf  # no samples after the storm: never settled
            if settled is math.inf or settled > self.settling_slo:
                self._violate(
                    "settling", "estimate",
                    f"estimate did not settle to {target:g}±"
                    f"{self.settling_tolerance:.0%} within "
                    f"{self.settling_slo:g} s of storm end t={end} "
                    f"(settling time: {settled})", now)

    # -- reductions -----------------------------------------------------------

    @property
    def max_recovery_seconds(self):
        return max(self.recovery_seconds, default=0.0)

    def violation_tuples(self):
        """Picklable, fingerprint-stable reduction of every violation."""
        return tuple(v.as_tuple() for v in self.violations)
