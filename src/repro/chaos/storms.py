"""Correlated fault storms: fleet-aware chaos primitives and profiles.

The :mod:`repro.faults` layer speaks in single faults — one blackout
window, one server stall.  Production mobility fails in *correlated*
bursts: a region's radio coverage collapses for every client at once, a
cell edge flaps the whole link, a datacenter rollout stalls half the
server pool, and users churn through tunnels in waves.  This module
expresses those episodes once, fleet-wide, and compiles them into the
existing single-shard fault machinery:

- storm primitives (:class:`RegionalBlackout`, :class:`FlappingLink`,
  :class:`ServerPoolOutage`, :class:`ClientChurn`) are frozen, picklable
  descriptions in **measurement-relative** seconds (0 = end of priming),
  optionally scoped to a subset of shards;
- a :class:`ChaosProfile` composes primitives with the drill schedule
  and the auditor's SLOs;
- :meth:`ChaosProfile.for_shard` compiles the profile into one shard's
  concrete :class:`ShardChaos` — every sampled choice (which servers
  stall, which clients churn and when) drawn from named
  :class:`~repro.sim.rng.RngRegistry` streams of the *shard's* seed, so
  the schedule is a pure function of ``(profile, shard, seed)`` and the
  fleet fingerprint stays byte-identical at any ``--jobs``.

The compiled :class:`ShardChaos` feeds the two existing fault channels:
:meth:`ShardChaos.link_plan` folds blackout windows into the shard's
scenario trace (before the world shifts it by the priming prefix), and
:meth:`ShardChaos.runtime_plan` arms server-pool stalls at absolute
simulation times.
"""

from dataclasses import dataclass, replace

from repro.errors import FaultError
from repro.faults.plan import Blackout, FaultPlan, ServerStall
from repro.sim.rng import RngRegistry

#: Default recovery SLO: a tracker offline when a storm clears must be
#: CONNECTED again within this many seconds (see InvariantAuditor).
DEFAULT_RECOVERY_SLO = 15.0
#: Default grace for the upcall-answered invariant: an application that
#: received a violation/disconnect upcall must re-register (or depart)
#: within this many seconds.
DEFAULT_UPCALL_GRACE = 10.0


def _require(condition, message):
    if not condition:
        raise FaultError(message)


def _check_shards(shards):
    if shards is None:
        return None
    shards = tuple(sorted(set(int(s) for s in shards)))
    _require(all(s >= 0 for s in shards),
             f"storm shard indices must be >= 0, got {shards!r}")
    return shards


@dataclass(frozen=True)
class RegionalBlackout:
    """Total connectivity loss for every client in the affected shards.

    One storm, one region: the shard's single modulated link goes dark,
    so all of its clients disconnect together — the correlated failure
    mode a per-connection fault cannot express.
    """

    start: float
    duration: float
    shards: tuple = None  #: shard indices hit, or None for every shard

    def __post_init__(self):
        _require(self.start >= 0, f"blackout start must be >= 0, got {self.start!r}")
        _require(self.duration > 0,
                 f"blackout duration must be positive, got {self.duration!r}")
        object.__setattr__(self, "shards", _check_shards(self.shards))

    def windows(self):
        return ((self.start, self.duration),)


@dataclass(frozen=True)
class FlappingLink:
    """A link that cycles dark/bright ``flaps`` times (cell-edge flutter)."""

    start: float
    flaps: int
    down_seconds: float
    up_seconds: float
    shards: tuple = None

    def __post_init__(self):
        _require(self.start >= 0, f"flap start must be >= 0, got {self.start!r}")
        _require(self.flaps >= 1, f"flaps must be >= 1, got {self.flaps!r}")
        _require(self.down_seconds > 0,
                 f"down_seconds must be positive, got {self.down_seconds!r}")
        _require(self.up_seconds > 0,
                 f"up_seconds must be positive, got {self.up_seconds!r}")
        object.__setattr__(self, "shards", _check_shards(self.shards))

    def windows(self):
        period = self.down_seconds + self.up_seconds
        return tuple((self.start + i * period, self.down_seconds)
                     for i in range(self.flaps))


@dataclass(frozen=True)
class ServerPoolOutage:
    """A seeded fraction of the shard's server pool stalls for a window."""

    start: float
    duration: float
    fraction: float = 0.5
    shards: tuple = None

    def __post_init__(self):
        _require(self.start >= 0, f"outage start must be >= 0, got {self.start!r}")
        _require(self.duration > 0,
                 f"outage duration must be positive, got {self.duration!r}")
        _require(0 < self.fraction <= 1,
                 f"outage fraction must be in (0, 1], got {self.fraction!r}")
        object.__setattr__(self, "shards", _check_shards(self.shards))


@dataclass(frozen=True)
class ClientChurn:
    """A seeded wave of clients leaves and rejoins (tunnels, app restarts).

    Each sampled client departs at ``start + U(0, spread)`` and returns
    ``downtime`` seconds later; departures cancel the client's window
    registrations (the auditor treats departure as answering any pending
    upcall).
    """

    start: float
    fraction: float = 0.25
    downtime: float = 8.0
    spread: float = 4.0
    shards: tuple = None

    def __post_init__(self):
        _require(self.start >= 0, f"churn start must be >= 0, got {self.start!r}")
        _require(0 < self.fraction <= 1,
                 f"churn fraction must be in (0, 1], got {self.fraction!r}")
        _require(self.downtime > 0,
                 f"churn downtime must be positive, got {self.downtime!r}")
        _require(self.spread >= 0,
                 f"churn spread must be >= 0, got {self.spread!r}")
        object.__setattr__(self, "shards", _check_shards(self.shards))


STORM_TYPES = (RegionalBlackout, FlappingLink, ServerPoolOutage, ClientChurn)


@dataclass(frozen=True)
class ShardChaos:
    """One shard's compiled chaos schedule (picklable, deterministic).

    All schedule times are measurement-relative; ``offset`` (the world's
    priming prefix) converts them to absolute simulation seconds via
    :meth:`absolute`.
    """

    shard: int
    offset: float  #: priming prefix, seconds (measurement t=0 is here)
    duration: float
    blackouts: tuple = ()  #: ((start, duration), ...)
    server_stalls: tuple = ()  #: ((start, duration, port), ...)
    churn: tuple = ()  #: ((leave, rejoin, client_index), ...)
    drill_at: float = None  #: crash-drill instant, or None for no drill
    recovery_slo: float = DEFAULT_RECOVERY_SLO
    upcall_grace: float = DEFAULT_UPCALL_GRACE

    def absolute(self, t):
        return self.offset + t

    def link_plan(self):
        """Blackouts as a :class:`FaultPlan` in the *measurement* timeline.

        Apply to the shard's scenario trace **before** it is handed to the
        world (which prepends the priming prefix): the raw trace's t=0 is
        measurement t=0, so the windows map through directly.
        """
        return FaultPlan([Blackout(start, duration)
                          for start, duration in self.blackouts],
                         name=f"storm-{self.shard}")

    def runtime_plan(self):
        """Server stalls as a :class:`FaultPlan` at absolute sim times."""
        return FaultPlan([ServerStall(self.absolute(start), duration, port=port)
                          for start, duration, port in self.server_stalls],
                         name=f"stalls-{self.shard}")

    def storm_windows(self):
        """Absolute (start, end) spans of every storm, sorted by start.

        The auditor's recovery SLO runs relative to these ends; the
        windows include server stalls because a stalled server takes its
        clients' trackers offline exactly like a dark link does.
        """
        windows = [(self.absolute(s), self.absolute(s) + d)
                   for s, d in self.blackouts]
        windows += [(self.absolute(s), self.absolute(s) + d)
                    for s, d, _ in self.server_stalls]
        return tuple(sorted(windows))


@dataclass(frozen=True)
class ChaosProfile:
    """A named, composable storm schedule plus the drill and audit knobs.

    Frozen and picklable: a profile rides inside each shard's
    :class:`~repro.parallel.runner.TrialUnit` params, so the on-disk
    result cache keys on it and worker processes receive it verbatim.
    """

    name: str
    storms: tuple
    drill_at: float = None  #: measurement-relative crash-drill time
    recovery_slo: float = DEFAULT_RECOVERY_SLO
    upcall_grace: float = DEFAULT_UPCALL_GRACE

    def __post_init__(self):
        storms = tuple(self.storms)
        for storm in storms:
            if not isinstance(storm, STORM_TYPES):
                raise FaultError(
                    f"unknown storm type {storm!r}; known: "
                    f"{[t.__name__ for t in STORM_TYPES]}"
                )
        object.__setattr__(self, "storms", storms)

    def without_drill(self):
        return replace(self, drill_at=None)

    def shard_storms(self, shard):
        return [storm for storm in self.storms
                if storm.shards is None or shard in storm.shards]

    def for_shard(self, shard, clients, server_ports, duration, seed,
                  offset=0.0):
        """Compile this profile into one shard's :class:`ShardChaos`.

        Every sampled decision draws from a named stream of the shard's
        own ``RngRegistry(seed)``, so the schedule depends only on the
        arguments — never on execution order, jobs count, or which other
        shards exist.
        """
        registry = RngRegistry(seed)
        blackouts = []
        stalls = []
        churn = []
        for index, storm in enumerate(self.shard_storms(shard)):
            if isinstance(storm, (RegionalBlackout, FlappingLink)):
                for start, window in storm.windows():
                    _require(
                        start + window < duration,
                        f"{type(storm).__name__} window "
                        f"[{start}, {start + window}) must end before the "
                        f"run does ({duration} s): a blackout reaching the "
                        "end of the trace pins the link dark forever"
                    )
                    blackouts.append((start, window))
            elif isinstance(storm, ServerPoolOutage):
                _require(
                    storm.start + storm.duration < duration,
                    f"ServerPoolOutage window must end before the run does "
                    f"({duration} s), got "
                    f"[{storm.start}, {storm.start + storm.duration})"
                )
                count = max(1, round(storm.fraction * len(server_ports)))
                rng = registry.stream(f"chaos-servers-{index}")
                victims = sorted(rng.sample(list(server_ports), count))
                stalls.extend((storm.start, storm.duration, port)
                              for port in victims)
            elif isinstance(storm, ClientChurn):
                _require(
                    storm.start + storm.spread + storm.downtime < duration,
                    "ClientChurn must rejoin before the run ends "
                    f"({duration} s); last possible rejoin is "
                    f"{storm.start + storm.spread + storm.downtime}"
                )
                count = max(1, round(storm.fraction * clients))
                rng = registry.stream(f"chaos-churn-{index}")
                victims = sorted(rng.sample(range(clients), min(count, clients)))
                for client_index in victims:
                    leave = storm.start + rng.uniform(0.0, storm.spread)
                    churn.append((leave, leave + storm.downtime, client_index))
        if self.drill_at is not None:
            _require(0 < self.drill_at < duration,
                     f"drill_at must fall inside the run (0, {duration}), "
                     f"got {self.drill_at!r}")
        return ShardChaos(
            shard=shard,
            offset=offset,
            duration=duration,
            blackouts=tuple(sorted(blackouts)),
            server_stalls=tuple(sorted(stalls)),
            churn=tuple(sorted(churn)),
            drill_at=self.drill_at,
            recovery_slo=self.recovery_slo,
            upcall_grace=self.upcall_grace,
        )


#: Named storm-profile builders, each a function of the run duration so
#: the same profile name scales from smoke tests to full fleet runs.
def standard_profile(name, duration):
    """Build a named :class:`ChaosProfile` scaled to ``duration`` seconds."""
    d = float(duration)
    _require(d > 0, f"profile duration must be positive, got {duration!r}")
    slo = min(DEFAULT_RECOVERY_SLO, 0.3 * d)
    if name == "regional-blackout":
        return ChaosProfile(
            name=name,
            storms=(RegionalBlackout(start=0.25 * d, duration=0.40 * d),),
            drill_at=0.55 * d,
            recovery_slo=slo,
        )
    if name == "flapping":
        return ChaosProfile(
            name=name,
            storms=(FlappingLink(start=0.2 * d, flaps=3,
                                 down_seconds=0.08 * d, up_seconds=0.10 * d),),
            recovery_slo=slo,
        )
    if name == "server-outage":
        return ChaosProfile(
            name=name,
            storms=(ServerPoolOutage(start=0.3 * d, duration=0.3 * d,
                                     fraction=0.5),),
            recovery_slo=slo,
        )
    if name == "churn":
        return ChaosProfile(
            name=name,
            storms=(ClientChurn(start=0.2 * d, fraction=0.25,
                                downtime=0.25 * d, spread=0.15 * d),),
            recovery_slo=slo,
        )
    if name == "full-storm":
        return ChaosProfile(
            name=name,
            storms=(
                ClientChurn(start=0.15 * d, fraction=0.2,
                            downtime=0.2 * d, spread=0.1 * d),
                RegionalBlackout(start=0.2 * d, duration=0.25 * d),
                ServerPoolOutage(start=0.55 * d, duration=0.2 * d,
                                 fraction=0.5),
            ),
            drill_at=0.3 * d,
            recovery_slo=slo,
        )
    raise FaultError(
        f"unknown chaos profile {name!r}; known: {sorted(PROFILE_NAMES)}"
    )


PROFILE_NAMES = ("regional-blackout", "flapping", "server-outage", "churn",
                 "full-storm")


def resolve_profile(profile, duration):
    """Accept a profile name or a ready :class:`ChaosProfile`."""
    if isinstance(profile, ChaosProfile):
        return profile
    return standard_profile(profile, duration)
