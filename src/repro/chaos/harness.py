"""The fleet-scale chaos harness: storm a fleet, audit it, score it.

:func:`run_chaos_fleet` is the chaos twin of
:func:`repro.fleet.harness.run_fleet`: same sharding, same seeding, same
deterministic merge through :func:`repro.parallel.run_units` — plus a
:class:`~repro.chaos.storms.ChaosProfile` riding inside every shard's
trial unit, so each worker compiles and arms its own storm schedule from
the shard seed alone.  The merged :class:`ChaosReport` wraps the ordinary
:class:`~repro.fleet.harness.FleetReport` with the graceful-degradation
scorecard: auditor violations, deferred-op conservation, the fleet-wide
fidelity floor, worst-case recovery time, and the drill ledger.

Because the profile is plain frozen data and every sampled choice draws
from named per-shard RNG streams, the report's fingerprint is
byte-identical at any ``--jobs`` and across cache hits — chaos runs are
replayable evidence, not weather.
"""

import time
from dataclasses import dataclass, field

from repro.chaos.storms import resolve_profile
from repro.fleet.harness import (
    DEFAULT_DURATION,
    DEFAULT_SHARDS,
    FleetReport,
    fleet_units,
)
from repro.parallel.runner import CONFIGURED, TrialUnit, run_units


def chaos_units(clients, shards=DEFAULT_SHARDS, duration=DEFAULT_DURATION,
                profile="regional-blackout", drill=True, master_seed=0,
                **fleet_kwargs):
    """Per-shard trial units with the resolved profile in their params."""
    profile = resolve_profile(profile, duration)
    if not drill:
        profile = profile.without_drill()
    units = fleet_units(clients, shards=shards, duration=duration,
                        master_seed=master_seed, **fleet_kwargs)
    return [
        TrialUnit(unit.experiment, {**unit.params, "chaos": profile},
                  unit.seed)
        for unit in units
    ], profile


@dataclass
class ChaosReport:
    """The fleet report plus the chaos scorecard."""

    profile: object  #: the resolved ChaosProfile
    fleet: FleetReport
    wall_seconds: float = field(default=0.0, compare=False)

    @property
    def shard_stats(self):
        """Per-shard :class:`~repro.chaos.arm.ChaosShardStats`, shard order."""
        return [result.chaos for result in self.fleet.shard_results
                if result.chaos is not None]

    @property
    def violations(self):
        """Every auditor violation row, shard order then detection order."""
        return [(result.shard,) + violation
                for result in self.fleet.shard_results
                if result.chaos is not None
                for violation in result.chaos.violations]

    @property
    def total_violations(self):
        return len(self.violations)

    @property
    def ops_lost(self):
        return sum(stats.ops_lost for stats in self.shard_stats)

    @property
    def marks_deferred(self):
        return sum(stats.marks_deferred for stats in self.shard_stats)

    @property
    def fidelity_floor(self):
        """The worst fidelity any client in the fleet was pushed to."""
        floors = [stats.fidelity_floor for stats in self.shard_stats]
        return min(floors) if floors else 0.0

    @property
    def recovery_max_seconds(self):
        """Slowest observed post-storm reconnection, fleet-wide."""
        return max((stats.recovery_max_seconds for stats in self.shard_stats),
                   default=0.0)

    @property
    def drills(self):
        """Per-shard drill outcomes (shards without a drill omitted)."""
        return [stats.drill for stats in self.shard_stats
                if stats.drill is not None]

    @property
    def drill_deferred_ops(self):
        """Deferred ops carried through snapshot→crash→restore, summed."""
        return sum(drill.deferred_restored for drill in self.drills)

    @property
    def drill_dropped_registrations(self):
        return sum(len(drill.registrations_dropped) for drill in self.drills)

    def scorecard(self):
        """The graceful-degradation scorecard as a flat metrics dict."""
        return {
            "chaos_violations": self.total_violations,
            "chaos_ops_lost": self.ops_lost,
            "chaos_marks_deferred": self.marks_deferred,
            "chaos_fidelity_floor": self.fidelity_floor,
            "chaos_recovery_seconds": self.recovery_max_seconds,
            "chaos_mean_fidelity": self.fleet.mean_fidelity,
            "chaos_drill_deferred_ops": self.drill_deferred_ops,
            "chaos_drill_dropped_registrations":
                self.drill_dropped_registrations,
        }

    def fingerprint(self):
        """sha256 over the profile name and the chaos-extended fleet hash."""
        import hashlib

        digest = hashlib.sha256()
        digest.update(repr((self.profile.name, self.profile.drill_at)).encode())
        digest.update(self.fleet.fingerprint().encode())
        return digest.hexdigest()


def run_chaos_fleet(clients, shards=DEFAULT_SHARDS, duration=DEFAULT_DURATION,
                    profile="regional-blackout", drill=True, master_seed=0,
                    jobs=None, cache=CONFIGURED, **fleet_kwargs):
    """Storm a fleet and return the merged :class:`ChaosReport`.

    ``profile`` is a profile name (see
    :data:`~repro.chaos.storms.PROFILE_NAMES`) or a ready
    :class:`~repro.chaos.storms.ChaosProfile`; ``drill=False`` strips the
    crash–recovery drill from the schedule.
    """
    units, resolved = chaos_units(
        clients, shards=shards, duration=duration, profile=profile,
        drill=drill, master_seed=master_seed, **fleet_kwargs,
    )
    started = time.perf_counter()
    results = run_units(units, jobs=jobs, cache=cache)
    wall = time.perf_counter() - started
    fleet = FleetReport(
        clients=clients, shards=shards, duration=duration,
        policy=units[0].params["policy"], family=units[0].params["family"],
        master_seed=master_seed, shard_results=tuple(results),
        wall_seconds=wall,
    )
    return ChaosReport(profile=resolved, fleet=fleet, wall_seconds=wall)
