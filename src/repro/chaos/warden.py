"""The chaos fleet warden: evidence-bearing fetches plus a deferrable write.

The plain fleet :class:`~repro.apps.bitstream.StreamWarden` fetches with
no timeout and feeds the connectivity tracker no evidence — fine for
steady-state throughput runs, useless under storms: a dark link would
just wedge every fetch forever and the lifecycle machinery would never
fire.  Chaos shards swap in this warden:

- ``get-chunk`` carries a timeout and reports each outcome to the
  connection's tracker; while the tracker says offline the warden fails
  fast with :class:`~repro.errors.Disconnected` instead of feeding
  doomed traffic to a dead link;
- ``save-mark`` is a small *mutating* op (the client persisting its
  stream position) registered in :attr:`Warden.DEFERRABLE_TSOPS`, so
  disconnected-mode marks queue in the deferred log, coalesce per
  client, and reintegrate on reconnection — the workload the drill and
  the auditor's conservation invariant bite on.
"""

from repro.apps.bitstream import DEFAULT_CHUNK_BYTES, StreamWarden
from repro.errors import Disconnected, RpcTimeout
from repro.rpc.messages import ServerReply

#: Per-RPC timeout under chaos, seconds.  Shorter than the client pacing
#: period so a dead link turns into tracker evidence within a couple of
#: fetch attempts rather than a wedged cadence.
DEFAULT_FETCH_TIMEOUT = 2.0


class ChaosStreamWarden(StreamWarden):
    """A streaming warden whose ops produce connectivity evidence."""

    TSOPS = {"get-chunk": "tsop_get_chunk", "save-mark": "tsop_save_mark"}
    DEFERRABLE_TSOPS = frozenset({"save-mark"})

    def __init__(self, sim, viceroy, name, fetch_timeout=DEFAULT_FETCH_TIMEOUT,
                 **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.fetch_timeout = fetch_timeout
        self.marks_applied = 0

    def coalesce_key(self, opcode, rest, inbuf):
        # A client's queued position marks overwrite each other; only the
        # latest needs to survive reintegration.
        if opcode == "save-mark":
            return f"mark:{inbuf.get('client', rest)}"
        return None

    def _note(self, conn, ok):
        tracker = self.connectivity(conn)
        if tracker is not None:
            if ok:
                tracker.note_success()
            else:
                tracker.note_failure()

    def tsop_get_chunk(self, app, rest, inbuf):
        conn = self.primary_connection(rest)
        tracker = self.connectivity(conn)
        if tracker is not None and tracker.offline:
            raise Disconnected(
                f"warden {self.name!r}: link offline, chunk fetch refused")
        nbytes = int(inbuf.get("nbytes", DEFAULT_CHUNK_BYTES))
        try:
            _, _, fetched = yield from conn.fetch(
                "get-chunk", body={"nbytes": nbytes}, body_bytes=64,
                timeout=self.fetch_timeout,
            )
        except RpcTimeout:
            self._note(conn, ok=False)
            raise
        self._note(conn, ok=True)
        return fetched

    def tsop_save_mark(self, app, rest, inbuf):
        """Persist a client's stream position (deferrable, replay-safe)."""
        conn = self.primary_connection(rest)
        try:
            reply = yield from conn.call(
                "save-mark", body=dict(inbuf), body_bytes=64,
                timeout=self.fetch_timeout,
            )
        except RpcTimeout:
            self._note(conn, ok=False)
            raise
        self._note(conn, ok=True)
        self.marks_applied += 1
        return reply


def install_mark_op(service):
    """Register the ``save-mark`` handler on a server's RPC service.

    Returns the mark store (client name -> last saved position) so tests
    can assert on what actually reached the server.
    """
    marks = {}

    def _save_mark(body):
        marks[body.get("client")] = body.get("position")
        return ServerReply(body={"saved": True}, body_bytes=32)

    service.register("save-mark", _save_mark)
    return marks
