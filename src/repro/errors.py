"""Exception hierarchy shared across the reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """A misuse of the simulation kernel (e.g. rescheduling a fired event)."""


class TelemetryError(ReproError):
    """A misuse of the telemetry subsystem (e.g. re-registering a metric
    under a different instrument kind, or ending an unknown span)."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulated process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """Base class for simulated network failures."""


class LinkDown(NetworkError):
    """A packet was offered to a link whose bandwidth is currently zero."""


class FaultError(NetworkError):
    """A fault-injection plan is malformed or cannot be armed."""


class RpcError(ReproError):
    """Base class for simulated RPC failures."""


class RpcTimeout(RpcError):
    """An RPC exchange exceeded its timeout without completing."""


class OdysseyError(ReproError):
    """Base class for errors returned by the Odyssey API."""


class ToleranceError(OdysseyError):
    """A ``request`` call found the resource outside the requested window.

    Mirrors the paper's API: the error carries the currently available level
    so the application can immediately pick a new fidelity and re-request.
    """

    def __init__(self, resource_id, available):
        super().__init__(f"resource {resource_id!r} outside window; available={available}")
        self.resource_id = resource_id
        self.available = available


class Disconnected(OdysseyError):
    """A fetch could not be served while its connection is disconnected.

    Raised by degraded-service mode when the requested object is not in the
    warden's cache (or its cached copy is older than the warden's staleness
    bound).  Carries the cache ``key`` and the ``age`` of the too-stale copy
    (``None`` for a plain miss) so applications can distinguish the cases.
    """

    def __init__(self, message, key=None, age=None):
        super().__init__(message)
        self.key = key
        self.age = age


class DeferredLogFull(OdysseyError):
    """A mutating operation could not be queued: the deferred-op log is at
    capacity.  The application must drop the operation or retry later."""


class NoSuchObject(OdysseyError):
    """An Odyssey path did not resolve to any warden-managed object."""


class NoSuchOperation(OdysseyError):
    """A ``tsop`` opcode is not supported by the object's warden."""


class BadDescriptor(OdysseyError):
    """A resource descriptor is malformed (unknown resource, bad bounds)."""


class RequestNotFound(OdysseyError):
    """``cancel`` named a request identifier that is not registered."""


class TransportError(ReproError):
    """Base class for real-transport (socket/broker) failures."""


class WireError(TransportError):
    """A message could not be encoded to or decoded from the wire format
    (unsupported value type, unknown message kind, malformed payload)."""


class FrameError(WireError):
    """A wire frame is unusable: bad magic, unsupported version, oversize
    or truncated length, or a checksum mismatch.  The connection that
    produced it cannot be resynchronized and must be closed."""


class BrokerError(TransportError):
    """A broker protocol violation (bad handshake, namespace breach,
    duplicate client name, or an operation on a dead session)."""


class RemoteCallError(TransportError):
    """An error raised by a remote handler, reconstructed from the wire.

    The original exception type cannot cross the wire; ``kind`` carries its
    class name and ``message`` its text.  Compares by value so round-tripped
    responses stay equal to what was sent.
    """

    def __init__(self, kind, message):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message

    def __eq__(self, other):
        return (isinstance(other, RemoteCallError)
                and self.kind == other.kind and self.message == other.message)

    def __hash__(self):
        return hash((self.kind, self.message))


class ParallelError(ReproError):
    """A trial unit could not be scheduled, executed, or cached."""


class BenchmarkError(ReproError):
    """A benchmark baseline document or run report is malformed or missing."""
