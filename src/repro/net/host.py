"""Hosts: named endpoints with port-based dispatch."""

from repro.errors import NetworkError


class Host:
    """A simulated machine.

    Services bind to named ports; arriving packets dispatch to the bound
    handler (``handler(packet)``).  Sending goes through the attached
    :class:`~repro.net.network.Network`, which owns routing.
    """

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.network = None
        self._ports = {}

    def __repr__(self):
        return f"<Host {self.name!r} ports={sorted(self._ports)}>"

    def bind(self, port, handler):
        """Attach ``handler`` to ``port``.  Rebinding a port is an error."""
        if port in self._ports:
            raise NetworkError(f"host {self.name!r}: port {port!r} already bound")
        self._ports[port] = handler

    def unbind(self, port):
        """Detach whatever is bound to ``port``."""
        if port not in self._ports:
            raise NetworkError(f"host {self.name!r}: port {port!r} not bound")
        del self._ports[port]

    def send(self, packet):
        """Hand ``packet`` to the network for routing."""
        if self.network is None:
            raise NetworkError(f"host {self.name!r} is not attached to a network")
        if packet.src != self.name:
            raise NetworkError(
                f"host {self.name!r} sending packet with src {packet.src!r}"
            )
        self.network.route(packet)

    def receive(self, packet):
        """Dispatch an arriving packet to its port's handler."""
        handler = self._ports.get(packet.port)
        if handler is None:
            raise NetworkError(
                f"host {self.name!r}: no handler for port {packet.port!r} "
                f"(packet from {packet.src!r})"
            )
        handler(packet)
