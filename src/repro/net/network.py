"""The experimental topology: one mobile client behind a modulated link.

All experiments in the paper share one shape (§6.1.3): a single client
whose network connection is modulated, talking to a collection of servers on
a fast wired LAN.  Contention between concurrent applications arises
naturally because every byte to or from the client serializes through the
same modulated duplex link.

Wired (server-to-server) traffic — e.g. the distillation server fetching
from a web server — experiences only a small fixed LAN delay plus
transmission at Ethernet speed, with no modeled contention.
"""

from repro.errors import NetworkError
from repro.net.host import Host
from repro.net.link import SimplexLink

#: Fast-LAN parameters for server-to-server hops.
WIRED_BANDWIDTH = 1250 * 1024  # 10 Mb/s Ethernet, bytes/s
WIRED_LATENCY = 0.0005


class Network:
    """A star of servers around one trace-modulated mobile client.

    Parameters
    ----------
    sim:
        The simulator.
    trace:
        Replay trace modulating the client's link, both directions.
    client_name:
        Name of the mobile client host (created eagerly).
    """

    def __init__(self, sim, trace, client_name="client"):
        self.sim = sim
        self.trace = trace
        self.hosts = {}
        self.client = self.add_host(client_name, wired=False)
        self.uplink = SimplexLink(sim, trace, f"{client_name}.up", deliver=self._deliver)
        self.downlink = SimplexLink(
            sim, trace, f"{client_name}.down", deliver=self._deliver
        )
        self._wired_last_delivery = {}  # (src, dst) -> time, enforces FIFO

    def add_host(self, name, wired=True):
        """Create and attach a host.  ``wired`` is informational."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host name {name!r}")
        host = Host(self.sim, name)
        host.network = self
        host.wired = wired
        self.hosts[name] = host
        return host

    def host(self, name):
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def route(self, packet):
        """Send ``packet`` toward its destination.

        Client-involved paths traverse the modulated link; wired-to-wired
        paths get the fixed fast-LAN delay.
        """
        if packet.dst not in self.hosts:
            raise NetworkError(f"packet addressed to unknown host {packet.dst!r}")
        if packet.src == self.client.name:
            self.uplink.send(packet)
        elif packet.dst == self.client.name:
            self.downlink.send(packet)
        else:
            # Fixed fast-LAN delay, with per-pair FIFO: a small packet must
            # not overtake a large one sent earlier on the same path (a
            # window's final fragment arriving first would corrupt
            # transfers).
            delay = WIRED_LATENCY + packet.size / WIRED_BANDWIDTH
            pair = (packet.src, packet.dst)
            deliver_at = max(self.sim.now + delay,
                             self._wired_last_delivery.get(pair, 0.0))
            self._wired_last_delivery[pair] = deliver_at
            self.sim.call_at(deliver_at, self._deliver, packet)

    def _deliver(self, packet):
        self.hosts[packet.dst].receive(packet)
