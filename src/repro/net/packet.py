"""Packets: the unit of simulated transmission."""

import itertools
from dataclasses import dataclass, field

from repro.errors import NetworkError

#: Bytes of protocol header per packet (IP + UDP + RPC framing).
HEADER_BYTES = 64

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One datagram in flight.

    ``size`` is the on-the-wire size in bytes including headers; ``payload``
    is an arbitrary message object (never serialized — this is a simulation).
    Slotted: experiments push millions of these through the links.
    """

    src: str
    dst: str
    port: str
    size: int
    payload: object = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    enqueued_at: float = None
    delivered_at: float = None

    def __post_init__(self):
        if self.size < HEADER_BYTES:
            raise NetworkError(
                f"packet size {self.size} smaller than header ({HEADER_BYTES})"
            )

    @property
    def payload_bytes(self):
        """Application bytes carried (wire size minus header)."""
        return self.size - HEADER_BYTES
