"""A serializing, trace-modulated simplex link.

The link is the paper's delay layer: traffic is delayed "according to a
simple linear model combining latency and bandwidth-induced delays"
(§6.1.2).  Packets serialize FIFO through the bandwidth term (they queue
behind each other), then experience the propagation latency in effect when
serialization finishes.  Delivery order is forced FIFO even across latency
drops, matching in-order modulation of a single radio.

The transmitter is event-driven rather than a generator process: every
fragment of every bulk transfer crosses a link, and the callback chain
(finish-transmission → begin-next) costs two scheduled events per packet
where the old process loop cost three plus two generator switches.
"""

import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import LinkDown
from repro.sim.events import Event
from repro.trace.integrate import transmission_finish_time


@dataclass(slots=True)
class LinkStats:
    """Counters a link keeps for evaluation and tests."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    busy_seconds: float = 0.0
    max_queue_depth: int = 0
    deliveries: list = field(default_factory=list, repr=False)

    def record(self, packet, service_time):
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self.busy_seconds += service_time


class SimplexLink:
    """One direction of the modulated wireless link.

    ``send(packet)`` either begins serializing immediately (idle link) or
    queues behind the packet in service.  When a packet's serialization
    finishes, delivery is scheduled ``latency_at(finish)`` later via
    ``deliver`` (a callable set by the network) and the next queued packet
    begins serializing.  Completion times are exact across trace
    transitions.
    """

    def __init__(self, sim, trace, name, deliver=None, record_deliveries=False):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.deliver = deliver
        self.stats = LinkStats()
        #: Optional fault hook: ``drop_filter(packet, when) -> bool``.  A
        #: truthy return discards the packet after serialization (the bytes
        #: occupied the air, but the receiver never sees them) — the
        #: mechanism behind injected loss bursts (:mod:`repro.faults`).
        self.drop_filter = None
        self._record_deliveries = record_deliveries
        self._waiting = deque()
        self._busy = False
        self._last_delivery = 0.0

    @property
    def queue_depth(self):
        """Packets waiting or in service (approximate, for inspection)."""
        return len(self._waiting) + (1 if self._busy else 0)

    def send(self, packet):
        """Enqueue ``packet`` for transmission."""
        packet.enqueued_at = self.sim.now
        if self._busy:
            waiting = self._waiting
            waiting.append(packet)
            stats = self.stats
            if len(waiting) > stats.max_queue_depth:
                stats.max_queue_depth = len(waiting)
        else:
            self._busy = True
            self._begin_transmission(packet)

    def _begin_transmission(self, packet):
        sim = self.sim
        start = sim.now
        finish = transmission_finish_time(self.trace, start, packet.size)
        if math.isinf(finish):
            # Surface at run(), exactly as the old transmitter process did:
            # an unwaited failing event propagates out of the kernel.
            Event(sim, name=f"{self.name}.down").fail(LinkDown(
                f"link {self.name!r}: bandwidth pinned at zero forever; "
                f"cannot transmit {packet!r}"
            ))
            return
        sim.call_at(finish, self._finish_transmission, packet, start)

    def _finish_transmission(self, packet, start):
        sim = self.sim
        finish = sim.now
        self.stats.record(packet, finish - start)
        if self.drop_filter is not None and self.drop_filter(packet, finish):
            self.stats.packets_dropped += 1
        else:
            deliver_at = finish + self.trace.latency_at(finish)
            # Enforce FIFO delivery even if latency drops mid-flight.
            if deliver_at < self._last_delivery:
                deliver_at = self._last_delivery
            self._last_delivery = deliver_at
            sim.call_at(deliver_at, self._deliver, packet)
        if self._waiting:
            self._begin_transmission(self._waiting.popleft())
        else:
            self._busy = False

    def _deliver(self, packet):
        packet.delivered_at = self.sim.now
        if self._record_deliveries:
            self.stats.deliveries.append((self.sim.now, packet.size))
        if self.deliver is None:
            raise LinkDown(f"link {self.name!r} has no delivery target")
        self.deliver(packet)
