"""Trace-modulated network emulation (paper §6.1.2).

The paper emulates slow wireless networks over a fast LAN with *trace
modulation*: a delay layer in the protocol stack applies a simple linear
model — latency plus bandwidth-induced delay — driven by a replay trace.  We
model one level further down: the network itself is simulated, and the
mobile client's (single) wireless link is the modulated element.

- :class:`Packet` — what moves: addressed, sized, carrying a payload object.
- :class:`SimplexLink` — a serializing FIFO link whose rate and latency
  follow a :class:`~repro.trace.ReplayTrace`; packet completion times are
  integrated exactly across trace transitions.
- :class:`Host` — endpoint with named ports dispatching received packets.
- :class:`Network` — the paper's topology: one mobile client behind a
  modulated duplex link; servers on the fast wired side.
"""

from repro.net.host import Host
from repro.net.link import LinkStats, SimplexLink
from repro.net.network import Network
from repro.net.packet import HEADER_BYTES, Packet

__all__ = [
    "HEADER_BYTES",
    "Host",
    "LinkStats",
    "Network",
    "Packet",
    "SimplexLink",
]
