"""The broker client: one named connection speaking real RPC over TCP.

A :class:`BrokerClient` owns a :class:`~repro.transport.tcp.TcpChannel`
and layers the broker protocol on top: the ``__hello__`` handshake that
claims a name and learns the registration namespace, awaitable calls with
per-call timeouts and :class:`~repro.rpc.connection.RetryPolicy` retries
(the same :class:`~repro.rpc.clock.RetrySchedule` arithmetic the sim path
uses, on a :class:`~repro.rpc.clock.MonotonicClock`), operation serving
for relayed calls, window-of-tolerance registration, and upcall receipt.

Connection health feeds a
:class:`~repro.connectivity.ConnectivityTracker` on wall-clock time —
call successes and timeouts are the same evidence stream the sim warden
produces, so the connectivity state machine runs unmodified on a real
socket.
"""

import asyncio
import itertools

from repro import telemetry
from repro.connectivity import ConnectivityTracker
from repro.errors import RemoteCallError, RpcTimeout, TransportError
from repro.rpc.clock import MonotonicClock, RetrySchedule
from repro.rpc.connection import PING_OP, RetryPolicy
from repro.rpc.messages import CallRequest, CallResponse
from repro.transport.tcp import connect_tcp

from repro.broker.server import (
    BYE_OP,
    CANCEL_OP,
    HELLO_OP,
    REGISTER_OP,
    REPLY_BODY_BYTES,
    REPORT_OP,
    REQUEST_OP,
    UPCALL_OP,
)

#: Default per-call timeout, seconds.  Generous: localhost calls complete
#: in microseconds; this only bounds a hung or dead broker.
DEFAULT_CALL_TIMEOUT = 10.0


class BrokerClient:
    """One named client connection to a running broker."""

    def __init__(self, host, port, name, clock=None):
        self.host = host
        self.port = port
        self.name = name
        self.clock = clock or MonotonicClock()
        self.namespace = None
        self.heartbeat_seconds = None
        self.channel = None
        self.tracker = ConnectivityTracker(clock=self.clock.now, name=name)
        self._seq = itertools.count(1)
        self._pending = {}  # seq -> Future for an in-flight call
        self._local_ops = {}  # full op name -> handler(body) -> reply body
        self._upcall_handler = None
        self._stream_handler = None  # receives non-call frames (bulk)
        self.calls = 0
        self.timeouts = 0
        self.late_replies = 0
        self.upcalls_received = []
        self.closed = False

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return f"<BrokerClient {self.name} {self.host}:{self.port} {state}>"

    # -- lifecycle ----------------------------------------------------------

    async def connect(self, timeout=DEFAULT_CALL_TIMEOUT):
        """Open the socket and perform the ``__hello__`` handshake."""
        self.channel = await connect_tcp(
            self.host, self.port, self._on_message,
            on_close=self._on_close, label=f"client:{self.name}",
        )
        reply = await self.call(HELLO_OP, {"client": self.name},
                                timeout=timeout)
        self.namespace = reply["namespace"]
        self.heartbeat_seconds = reply["heartbeat_seconds"]
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("broker_client.connected", client=self.name)
        return self

    async def close(self, polite=True):
        """Tear down; ``polite`` sends ``__bye__`` first (best effort)."""
        if self.closed:
            return
        if polite and self.channel is not None and not self.channel.closed:
            try:
                await self.call(BYE_OP, timeout=1.0)
            except (RpcTimeout, TransportError, RemoteCallError):
                pass  # the goodbye is a courtesy; the close is not
        self.closed = True
        if self.channel is not None:
            self.channel.close()
            await self.channel.wait_closed()

    def _on_close(self, exc):
        self.closed = True
        error = RemoteCallError(
            "TransportError",
            f"{self.name}: connection lost"
            if exc is None else f"{self.name}: connection lost ({exc})",
        )
        # Fail every in-flight call; their awaiting coroutines see the error.
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # -- calls --------------------------------------------------------------

    async def call(self, op, body=None, body_bytes=256,
                   timeout=DEFAULT_CALL_TIMEOUT, probe=False):
        """One request/response exchange; raises
        :class:`~repro.errors.RpcTimeout` after ``timeout`` seconds and
        :class:`~repro.errors.RemoteCallError` on a remote fault."""
        if self.channel is None or self.channel.closed:
            raise TransportError(f"{self.name}: not connected")
        seq = next(self._seq)
        future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        self.calls += 1
        rec = telemetry.RECORDER
        span = None
        if rec.enabled:
            rec.count("broker_client.calls", op=op)
            span = rec.begin("broker_client.call", op=op, client=self.name)
        self.channel.send(CallRequest(
            connection_id=self.name, seq=seq, op=op,
            body=body, body_bytes=body_bytes, reply_port="",
        ))
        try:
            response = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(seq, None)
            self.timeouts += 1
            self.tracker.note_failure(probe=probe)
            if rec.enabled:
                rec.count("broker_client.timeouts", op=op)
                rec.end(span, status="timeout")
            raise RpcTimeout(
                f"{self.name}: call {op!r} timed out after {timeout} s"
            ) from None
        except RemoteCallError:
            # Connection death surfaced through _on_close.
            if span is not None:
                rec.end(span, status="error")
            raise
        if span is not None:
            rec.end(span, status="error" if response.error else "ok")
        if response.error is not None:
            raise response.error
        self.tracker.note_success(probe=probe)
        return response.body

    async def call_with_retry(self, op, body=None, body_bytes=256,
                              retry=None):
        """Like :meth:`call`, retrying timeouts under a
        :class:`~repro.rpc.connection.RetryPolicy` with backoff pauses —
        the wall-clock twin of ``RpcConnection.call_with_retry``."""
        retry = retry or RetryPolicy()
        schedule = RetrySchedule(retry, self.clock)
        while True:
            try:
                return await self.call(op, body, body_bytes,
                                       timeout=schedule.attempt_timeout())
            except RpcTimeout:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                if schedule.past_deadline(delay):
                    raise RpcTimeout(
                        f"{self.name}: retry deadline ({retry.deadline} s) "
                        f"exhausted for {op!r}"
                    ) from None
                if delay > 0:
                    await self.clock.sleep(delay)

    async def ping(self, timeout=DEFAULT_CALL_TIMEOUT, probe=False):
        """Round-trip probe; returns the latency in seconds.  ``probe``
        marks the outcome as heartbeat evidence on the tracker."""
        started = self.clock.now()
        await self.call(PING_OP, timeout=timeout, probe=probe)
        return self.clock.now() - started

    # -- the broker protocol -------------------------------------------------

    async def register_op(self, suffix, handler):
        """Serve ``<namespace>/<suffix>`` for calls relayed by the broker.
        ``handler(body)`` runs synchronously and returns the reply body."""
        op = f"{self.namespace}/{suffix}"
        await self.call(REGISTER_OP, {"op": op})
        self._local_ops[op] = handler
        return op

    async def request(self, lower, upper, resource="bandwidth"):
        """Register a window of tolerance; returns the request id."""
        reply = await self.call(REQUEST_OP, {
            "resource": resource, "lower": lower, "upper": upper,
        })
        return reply["request_id"]

    async def cancel(self, request_id):
        await self.call(CANCEL_OP, {"request_id": request_id})

    async def report(self, level, resource="bandwidth"):
        """Report a resource level; returns the number of upcalls the
        broker pushed in response."""
        reply = await self.call(REPORT_OP,
                                {"resource": resource, "level": level})
        return reply["upcalls"]

    def on_upcall(self, handler):
        """Install ``handler(body)`` for window-violation upcalls."""
        self._upcall_handler = handler

    def on_stream(self, handler):
        """Install ``handler(message)`` for non-call frames (bulk
        :class:`~repro.rpc.messages.Fragment` streams and the like).
        Without one, such frames are ignored — the base request/response
        protocol never produces them."""
        self._stream_handler = handler

    # -- inbound ------------------------------------------------------------

    def _on_message(self, message):
        if isinstance(message, CallResponse):
            future = self._pending.pop(message.seq, None)
            if future is None or future.done():
                self.late_replies += 1  # timed out locally; reply wasted
                return
            future.set_result(message)
        elif isinstance(message, CallRequest):
            self._serve(message)
        elif self._stream_handler is not None:
            # Bulk-transfer frames (Fragment and friends); the wire layer
            # already guarantees the message decodes to a known type.
            self._stream_handler(message)

    def _serve(self, request):
        rec = telemetry.RECORDER
        if request.op == UPCALL_OP:
            self.upcalls_received.append(request.body)
            if rec.enabled:
                rec.count("broker_client.upcalls", client=self.name)
            if self._upcall_handler is not None:
                self._upcall_handler(request.body)
            self._reply(request, body={"ack": True})
            return
        handler = self._local_ops.get(request.op)
        if handler is None:
            self._reply(request, error=RemoteCallError(
                "BrokerError",
                f"{self.name} does not serve {request.op!r}"))
            return
        if rec.enabled:
            rec.count("broker_client.served", op=request.op)
        started = self.clock.now()
        try:
            body = handler(request.body)
        except Exception as exc:  # noqa: BLE001 - handler faults go back to the caller
            self._reply(request, error=RemoteCallError(
                type(exc).__name__, str(exc)))
            return
        self._reply(request, body=body,
                    server_seconds=self.clock.now() - started)

    def _reply(self, request, body=None, error=None, server_seconds=0.0):
        if self.channel is None or self.channel.closed:
            return
        self.channel.send(CallResponse(
            connection_id=request.connection_id, seq=request.seq,
            body=body, body_bytes=REPLY_BODY_BYTES,
            server_seconds=server_seconds, error=error,
        ))
