"""The broker subsystem: a real multi-client RPC broker over TCP.

The deployable face of the architecture (docs/architecture.md §15): an
asyncio :class:`Broker` accepting many named :class:`BrokerClient`
connections over the :mod:`repro.transport` wire format, enforcing
per-client registration namespaces, relaying calls between clients,
routing window-of-tolerance upcalls back to the owning connection, and
reaping sessions that miss their heartbeat budget.  ``repro serve``,
``repro connect``, and ``repro loadtest`` are the CLI faces.

Importing this package must never perturb a simulation —
``tests/test_transport_golden.py`` holds that line.
"""

from repro.broker.client import DEFAULT_CALL_TIMEOUT, BrokerClient
from repro.broker.loadtest import (
    LoadtestReport,
    format_loadtest_report,
    run_loadtest,
    run_loadtest_async,
)
from repro.broker.server import (
    BYE_OP,
    CANCEL_OP,
    DEFAULT_HEARTBEAT_TIMEOUT,
    HELLO_OP,
    NAMESPACE_PREFIX,
    REGISTER_OP,
    REPORT_OP,
    REQUEST_OP,
    UPCALL_OP,
    Broker,
)

__all__ = [
    "BYE_OP",
    "CANCEL_OP",
    "DEFAULT_CALL_TIMEOUT",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "HELLO_OP",
    "NAMESPACE_PREFIX",
    "REGISTER_OP",
    "REPORT_OP",
    "REQUEST_OP",
    "UPCALL_OP",
    "Broker",
    "BrokerClient",
    "LoadtestReport",
    "format_loadtest_report",
    "run_loadtest",
    "run_loadtest_async",
]
