"""The broker: one asyncio process multiplexing many RPC clients.

The deployable face of the viceroy/warden architecture (pyshv-lineage
design; docs/architecture.md §15).  One broker process listens on a TCP
port and, per connected client:

- **handshake** — the first operation must be ``__hello__`` carrying a
  unique client name; the broker answers with the client's *registration
  namespace* (``clients/<name>``) and its heartbeat budget;
- **calls** — ``CallRequest`` frames dispatch to broker-local handlers
  (``echo``, ``__ping__``, …) or relay to the client that registered the
  named operation, and the response is routed back to the caller;
- **namespaces** — a client may only register operations under its own
  namespace prefix; registrations elsewhere are rejected;
- **upcalls** — clients register windows of tolerance on named resources
  (``__request__``); when a reported level leaves a window the broker
  drops the registration (one-shot, like the viceroy) and pushes an
  ``__upcall__`` request to the *owning* connection, which acknowledges it;
- **liveness** — every frame refreshes the session's last-seen stamp; a
  reaper task tears down sessions silent past the heartbeat budget, and a
  socket death tears down immediately.  Teardown cancels the client's
  registrations and operations and fails its in-flight relayed calls back
  to their callers.
"""

import asyncio
import itertools

from repro import telemetry
from repro.errors import BrokerError, RemoteCallError
from repro.rpc.clock import MonotonicClock
from repro.rpc.connection import PING_OP
from repro.rpc.messages import CallRequest, CallResponse
from repro.transport.tcp import serve_tcp

#: Reserved operations (clients cannot register these).
HELLO_OP = "__hello__"
REGISTER_OP = "__register__"
REQUEST_OP = "__request__"
CANCEL_OP = "__cancel__"
REPORT_OP = "__report__"
BYE_OP = "__bye__"
#: Broker-to-client push notifying a violated window of tolerance.
UPCALL_OP = "__upcall__"

#: Prefix of every client's registration namespace.
NAMESPACE_PREFIX = "clients"

#: Seconds of silence before the reaper declares a session dead.  Clients
#: learn this in the hello reply and size their heartbeat interval off it.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Modeled reply size for broker-originated responses, bytes.
REPLY_BODY_BYTES = 64


class _Session:
    """Per-connection broker state."""

    __slots__ = ("channel", "name", "namespace", "ops", "registrations",
                 "pending_relays", "pending_upcalls", "last_seen",
                 "calls", "closed")

    def __init__(self, channel, now):
        self.channel = channel
        self.name = None  # set by hello
        self.namespace = None
        self.ops = set()  # operations this client registered
        self.registrations = set()  # request ids this client owns
        self.pending_relays = {}  # broker seq -> (caller, caller CallRequest)
        self.pending_upcalls = {}  # broker seq -> request id
        self.last_seen = now
        self.calls = 0
        self.closed = False

    def __repr__(self):
        return f"<Session {self.name or '?'} calls={self.calls}>"


class _Registration:
    """One window of tolerance owned by a connected client."""

    __slots__ = ("request_id", "session", "resource", "lower", "upper")

    def __init__(self, request_id, session, resource, lower, upper):
        self.request_id = request_id
        self.session = session
        self.resource = resource
        self.lower = lower
        self.upper = upper

    def contains(self, level):
        return self.lower <= level <= self.upper


class Broker:
    """Accepts many clients; routes calls, relays, and upcalls."""

    def __init__(self, host="127.0.0.1", port=0,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT, clock=None):
        if heartbeat_timeout <= 0:
            raise BrokerError(f"heartbeat timeout must be positive, "
                              f"got {heartbeat_timeout!r}")
        self._host = host
        self._port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.clock = clock or MonotonicClock()
        self._server = None
        self._reaper = None
        self._handlers = {}
        self._sessions = []  # every live session, named or not
        self._named = {}  # client name -> session
        self._client_ops = {}  # registered op -> owning session
        self._registrations = {}  # request id -> _Registration
        self._levels = {}  # resource -> last reported level
        self._request_ids = itertools.count(1)
        self._relay_seq = itertools.count(1)
        # Counters (surfaced by `repro serve` and the loadtest report).
        self.connections_accepted = 0
        self.connections_closed = 0
        self.sessions_expired = 0
        self.calls_served = 0
        self.calls_relayed = 0
        self.upcalls_sent = 0
        self.upcalls_acked = 0
        self.errors_returned = 0
        self.namespace_rejections = 0
        self.register(PING_OP, lambda body: {"pong": True})
        self.register("echo", lambda body: body)

    # -- lifecycle ----------------------------------------------------------

    async def start(self):
        """Bind the listening socket and start the heartbeat reaper."""
        self._server = await serve_tcp(self._accept, host=self._host,
                                       port=self._port, label="broker")
        interval = max(self.heartbeat_timeout / 4.0, 0.05)
        self._reaper = asyncio.ensure_future(self._reap_loop(interval))
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves an ephemeral port)."""
        return self._server.host, self._server.port

    async def close(self):
        """Tear down every session and stop listening."""
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        for session in list(self._sessions):
            self._teardown(session, reason="broker shutdown")
            session.channel.close()
        if self._server is not None:
            await self._server.close()
            self._server = None

    def describe(self):
        """Counter snapshot for status output and the loadtest report."""
        return {
            "clients": len(self._named),
            "connections_accepted": self.connections_accepted,
            "connections_closed": self.connections_closed,
            "sessions_expired": self.sessions_expired,
            "calls_served": self.calls_served,
            "calls_relayed": self.calls_relayed,
            "upcalls_sent": self.upcalls_sent,
            "upcalls_acked": self.upcalls_acked,
            "errors_returned": self.errors_returned,
            "namespace_rejections": self.namespace_rejections,
            "registrations": len(self._registrations),
            "client_ops": len(self._client_ops),
        }

    def register(self, op, handler):
        """Register a broker-local ``handler(body) -> reply_body``."""
        if op in self._handlers:
            raise BrokerError(f"broker op {op!r} already registered")
        self._handlers[op] = handler

    def _adopt(self, session):
        """Hook: ``session`` just claimed a name in :meth:`_hello`.  The
        base broker needs no per-client state beyond the session itself;
        the live broker adopts the client into its estimation tables."""

    def _abandon(self, session):
        """Hook: ``session`` is being torn down (name may be ``None`` if
        it never completed the handshake).  Runs before the registration
        and relay cleanup so overrides still see the session's state."""

    # -- accepting ----------------------------------------------------------

    def _accept(self, channel):
        self.connections_accepted += 1
        session = _Session(channel, self.clock.now())
        self._sessions.append(session)
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("broker.connections")
        channel.open(
            lambda message: self._on_message(session, message),
            lambda exc: self._on_channel_closed(session, exc),
        )

    def _on_channel_closed(self, session, exc):
        if not session.closed:
            self._teardown(session, reason="socket closed"
                           if exc is None else f"socket error: {exc}")

    async def _reap_loop(self, interval):
        while True:
            await self.clock.sleep(interval)
            deadline = self.clock.now() - self.heartbeat_timeout
            for session in list(self._sessions):
                if session.last_seen < deadline:
                    self.sessions_expired += 1
                    rec = telemetry.RECORDER
                    if rec.enabled:
                        rec.count("broker.sessions_expired")
                    self._teardown(session, reason="heartbeat expired")
                    session.channel.close()

    def _teardown(self, session, reason):
        """Remove every trace of a session; fail its in-flight relays."""
        if session.closed:
            return
        session.closed = True
        self.connections_closed += 1
        self._abandon(session)
        if session in self._sessions:
            self._sessions.remove(session)
        if session.name is not None and \
                self._named.get(session.name) is session:
            del self._named[session.name]
        for op in session.ops:
            self._client_ops.pop(op, None)
        for request_id in session.registrations:
            self._registrations.pop(request_id, None)
        for caller, request in session.pending_relays.values():
            self._respond(caller, request, error=RemoteCallError(
                "BrokerError", f"operation owner disconnected ({reason})"))
        session.pending_relays.clear()
        session.pending_upcalls.clear()
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("broker.teardowns")
            rec.event("broker.teardown", client=session.name, reason=reason)

    # -- dispatch -----------------------------------------------------------

    def _on_message(self, session, message):
        session.last_seen = self.clock.now()
        if isinstance(message, CallRequest):
            self._on_call(session, message)
        elif isinstance(message, CallResponse):
            self._on_response(session, message)
        else:
            self._on_stream(session, message)

    def _on_stream(self, session, message):
        """Non-call frame from a peer.  The base broker speaks only the
        request/response protocol, so this is a violation; subclasses that
        stream (the live broker's bulk transfer) override it."""
        self._teardown(session, reason=f"unexpected frame "
                                       f"{type(message).__name__}")
        session.channel.close()

    def _respond(self, session, request, body=None, error=None,
                 server_seconds=0.0):
        if session.closed:
            return
        if error is not None:
            self.errors_returned += 1
        session.channel.send(CallResponse(
            connection_id=request.connection_id, seq=request.seq,
            body=body, body_bytes=REPLY_BODY_BYTES,
            server_seconds=server_seconds, error=error,
        ))

    def _on_call(self, session, request):
        session.calls += 1
        self.calls_served += 1
        rec = telemetry.RECORDER
        span = None
        if rec.enabled:
            rec.count("broker.calls", op=request.op)
            span = rec.begin("broker.call", op=request.op,
                             client=session.name)
        try:
            self._dispatch_call(session, request)
        except BrokerError as exc:
            self._respond(session, request,
                          error=RemoteCallError("BrokerError", str(exc)))
            if span is not None:
                rec.end(span, status="error")
            return
        if span is not None:
            rec.end(span, status="ok")

    def _dispatch_call(self, session, request):
        op = request.op
        if op == HELLO_OP:
            return self._hello(session, request)
        if op == BYE_OP:
            self._respond(session, request, body={"bye": True})
            self._teardown(session, reason="bye")
            session.channel.close()
            return
        # The ping probe works pre-handshake: `repro connect` uses it to
        # test reachability without claiming a name.
        if session.name is None and op != PING_OP:
            raise BrokerError(f"operation {op!r} before {HELLO_OP}")
        if op == REGISTER_OP:
            return self._register_client_op(session, request)
        if op == REQUEST_OP:
            return self._request(session, request)
        if op == CANCEL_OP:
            return self._cancel(session, request)
        if op == REPORT_OP:
            return self._report(session, request)
        owner = self._client_ops.get(op)
        if owner is not None:
            return self._relay(session, request, owner)
        handler = self._handlers.get(op)
        if handler is None:
            raise BrokerError(f"no handler for operation {op!r}")
        started = self.clock.now()
        try:
            body = handler(request.body)
        except Exception as exc:  # noqa: BLE001 - handler faults go back to the caller
            self._respond(session, request, error=RemoteCallError(
                type(exc).__name__, str(exc)))
            return
        self._respond(session, request, body=body,
                      server_seconds=self.clock.now() - started)

    # -- handshake and registration ------------------------------------------

    def _hello(self, session, request):
        body = request.body or {}
        name = body.get("client") if isinstance(body, dict) else None
        if not name or not isinstance(name, str):
            raise BrokerError(f"{HELLO_OP} requires a 'client' name")
        if "/" in name:
            raise BrokerError(f"client name {name!r} may not contain '/'")
        if name in self._named:
            raise BrokerError(f"client name {name!r} already connected")
        if session.name is not None:
            raise BrokerError(f"session already registered as "
                              f"{session.name!r}")
        session.name = name
        session.namespace = f"{NAMESPACE_PREFIX}/{name}"
        self._named[name] = session
        self._adopt(session)
        self._respond(session, request, body={
            "welcome": True,
            "namespace": session.namespace,
            "heartbeat_seconds": self.heartbeat_timeout,
        })

    def _register_client_op(self, session, request):
        body = request.body or {}
        op = body.get("op") if isinstance(body, dict) else None
        if not op or not isinstance(op, str):
            raise BrokerError(f"{REGISTER_OP} requires an 'op' name")
        if not op.startswith(session.namespace + "/"):
            self.namespace_rejections += 1
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("broker.namespace_rejections")
            raise BrokerError(
                f"operation {op!r} is outside your namespace "
                f"{session.namespace!r}"
            )
        if op in self._client_ops:
            raise BrokerError(f"operation {op!r} already registered")
        self._client_ops[op] = session
        session.ops.add(op)
        self._respond(session, request, body={"registered": op})

    # -- windows of tolerance -------------------------------------------------

    def _request(self, session, request):
        body = request.body or {}
        try:
            resource = body.get("resource", "bandwidth")
            lower = float(body["lower"])
            upper = float(body["upper"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BrokerError(f"{REQUEST_OP} requires numeric "
                              f"lower/upper bounds") from exc
        if lower > upper:
            raise BrokerError(f"window [{lower}, {upper}] is inverted")
        level = self._levels.get(resource)
        if level is not None and not (lower <= level <= upper):
            # Mirrors the viceroy's ToleranceError: the caller learns the
            # available level and re-registers around a fitting fidelity.
            raise BrokerError(f"resource {resource!r} outside window; "
                              f"available={level}")
        request_id = next(self._request_ids)
        registration = _Registration(request_id, session, resource,
                                     lower, upper)
        self._registrations[request_id] = registration
        session.registrations.add(request_id)
        self._respond(session, request, body={"request_id": request_id})

    def _cancel(self, session, request):
        body = request.body or {}
        request_id = body.get("request_id") if isinstance(body, dict) else None
        registration = self._registrations.get(request_id)
        if registration is None or registration.session is not session:
            raise BrokerError(f"no registered request {request_id!r}")
        del self._registrations[request_id]
        session.registrations.discard(request_id)
        self._respond(session, request, body={"cancelled": request_id})

    def _report(self, session, request):
        body = request.body or {}
        try:
            resource = body.get("resource", "bandwidth")
            level = float(body["level"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BrokerError(f"{REPORT_OP} requires a numeric "
                              f"'level'") from exc
        self._levels[resource] = level
        violated = [r for r in self._registrations.values()
                    if r.resource == resource and not r.contains(level)]
        for registration in violated:
            # One-shot, exactly like the viceroy: drop, then notify the
            # owning connection.
            del self._registrations[registration.request_id]
            registration.session.registrations.discard(
                registration.request_id)
            self._push_upcall(registration, level)
        self._respond(session, request,
                      body={"resource": resource, "level": level,
                            "upcalls": len(violated)})

    def _push_upcall(self, registration, level):
        owner = registration.session
        if owner.closed:
            return
        seq = next(self._relay_seq)
        owner.pending_upcalls[seq] = registration.request_id
        self.upcalls_sent += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("broker.upcalls", resource=registration.resource)
        owner.channel.send(CallRequest(
            connection_id="broker", seq=seq, op=UPCALL_OP,
            body={"request_id": registration.request_id,
                  "resource": registration.resource, "level": level},
            body_bytes=REPLY_BODY_BYTES, reply_port="",
        ))

    # -- relayed calls and acks -----------------------------------------------

    def _relay(self, session, request, owner):
        seq = next(self._relay_seq)
        owner.pending_relays[seq] = (session, request)
        self.calls_relayed += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("broker.relays", op=request.op)
        owner.channel.send(CallRequest(
            connection_id="broker", seq=seq, op=request.op,
            body=request.body, body_bytes=request.body_bytes, reply_port="",
        ))

    def _on_response(self, session, response):
        relay = session.pending_relays.pop(response.seq, None)
        if relay is not None:
            caller, request = relay
            self._respond(caller, request, body=response.body,
                          error=response.error,
                          server_seconds=response.server_seconds)
            return
        if session.pending_upcalls.pop(response.seq, None) is not None:
            self.upcalls_acked += 1
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("broker.upcall_acks")
            return
        # A response to nothing we asked: stale after a teardown; ignore.
