"""Wall-clock load test: many asyncio clients hammering one broker.

Spins up N named clients (against an in-process ephemeral broker by
default, or a remote one via ``--port``), has each register a window of
tolerance and serve an ``echo`` operation under its namespace, then runs
closed-loop callers for a fixed wall-clock duration — mostly broker-local
echoes, with every :data:`RELAY_EVERY`-th call relayed through the broker
to a peer client's operation.  After the timed phase a single report
drives every surviving window into violation, and the test waits for each
client to receive its upcall: ``upcalls_received == clients`` is the
zero-lost-upcalls check CI enforces.

The report carries throughput and latency percentiles measured on the
monotonic clock — the first numbers in this repo that are *measured*
rather than simulated (EXPERIMENTS.md, "Broker load test").
"""

import asyncio
import math
from dataclasses import dataclass, field

from repro.broker.client import BrokerClient
from repro.broker.server import DEFAULT_HEARTBEAT_TIMEOUT, Broker
from repro.errors import BrokerError
from repro.rpc.clock import MonotonicClock

#: Every n-th call goes through the broker to a peer client's op.
RELAY_EVERY = 8
#: Registered windows span [0, this); the closing report exceeds it.
WINDOW_UPPER = 1.0e6
#: Seconds to wait for the final upcall fan-out to reach every client.
UPCALL_WAIT = 5.0
#: Per-call timeout during the timed phase, seconds.
CALL_TIMEOUT = 10.0


@dataclass
class LoadtestReport:
    """Everything one load-test run measured."""

    clients: int
    seconds: float
    address: tuple
    external_broker: bool
    calls: int = 0
    relayed: int = 0
    errors: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0
    calls_per_second: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    upcalls_expected: int = 0
    upcalls_received: int = 0
    clean_shutdown: bool = False
    broker: dict = None

    @property
    def lost_upcalls(self):
        return self.upcalls_expected - self.upcalls_received

    @property
    def ok(self):
        """The CI gate: no errors, no lost upcalls, clean teardown."""
        return (self.errors == 0 and self.timeouts == 0
                and self.lost_upcalls == 0 and self.clean_shutdown)


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def summarize_latencies(latencies_seconds):
    """Latency percentiles in milliseconds from raw per-call seconds."""
    ordered = sorted(latencies_seconds)
    if not ordered:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    to_ms = 1000.0
    return {
        "mean": to_ms * sum(ordered) / len(ordered),
        "p50": to_ms * percentile(ordered, 0.50),
        "p95": to_ms * percentile(ordered, 0.95),
        "p99": to_ms * percentile(ordered, 0.99),
        "max": to_ms * ordered[-1],
    }


async def _caller(client, peers, index, deadline, clock, latencies, report):
    """Closed-loop caller: echo mostly, relay to a peer every n-th call."""
    i = 0
    while clock.now() < deadline:
        if peers and i % RELAY_EVERY == RELAY_EVERY - 1:
            op = peers[(index + 1 + i // RELAY_EVERY) % len(peers)]
            report.relayed += 1
        else:
            op = "echo"
        started = clock.now()
        try:
            await client.call(op, body={"n": i}, timeout=CALL_TIMEOUT)
        except Exception:  # noqa: BLE001 - every failure is a counted result
            report.errors += 1
        else:
            latencies.append(clock.now() - started)
            report.calls += 1
        i += 1


async def run_loadtest_async(clients=64, seconds=2.0, host="127.0.0.1",
                             port=None,
                             heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT):
    """Run one load test; returns a :class:`LoadtestReport`.

    ``port=None`` starts an in-process broker on an ephemeral port;
    a concrete port targets an already-running broker.
    """
    if clients < 1:
        raise BrokerError(f"need at least one client, got {clients!r}")
    clock = MonotonicClock()
    broker = None
    if port is None:
        broker = Broker(host=host, port=0,
                        heartbeat_timeout=heartbeat_timeout)
        await broker.start()
        host, port = broker.address
    report = LoadtestReport(clients=clients, seconds=seconds,
                            address=(host, port),
                            external_broker=broker is None)
    fleet = [BrokerClient(host, port, f"lt-{i:04d}") for i in range(clients)]
    upcall_events = []
    try:
        await asyncio.gather(*(c.connect() for c in fleet))
        # Each client serves an echo op and watches one window; the
        # closing report will violate every window at once.
        peers = []
        for client in fleet:
            peers.append(await client.register_op("echo",
                                                  lambda body: body))
            await client.request(0.0, WINDOW_UPPER)
            event = asyncio.Event()
            client.on_upcall(lambda body, event=event: event.set())
            upcall_events.append(event)
        report.upcalls_expected = clients
        relay_peers = peers if clients > 1 else []

        latencies = []
        started = clock.now()
        deadline = started + seconds
        await asyncio.gather(*(
            _caller(client, relay_peers, i, deadline, clock, latencies,
                    report)
            for i, client in enumerate(fleet)
        ))
        report.wall_seconds = clock.now() - started
        report.timeouts = sum(c.timeouts for c in fleet)
        if report.wall_seconds > 0:
            report.calls_per_second = report.calls / report.wall_seconds
        report.latency_ms = summarize_latencies(latencies)

        # Violate every window; every client must get its upcall back.
        await fleet[0].call("__report__", {"resource": "bandwidth",
                                           "level": WINDOW_UPPER * 2})
        try:
            await asyncio.wait_for(
                asyncio.gather(*(e.wait() for e in upcall_events)),
                UPCALL_WAIT)
        except asyncio.TimeoutError:
            pass  # lost_upcalls in the report says how many never arrived
        report.upcalls_received = sum(
            1 for c in fleet if c.upcalls_received)
        if broker is not None:
            report.broker = broker.describe()
    finally:
        await asyncio.gather(*(c.close() for c in fleet),
                             return_exceptions=True)
        if broker is not None:
            await broker.close()
    report.clean_shutdown = all(c.closed for c in fleet)
    return report


def run_loadtest(clients=64, seconds=2.0, host="127.0.0.1", port=None,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT):
    """Synchronous entry point (owns the event loop)."""
    return asyncio.run(run_loadtest_async(
        clients=clients, seconds=seconds, host=host, port=port,
        heartbeat_timeout=heartbeat_timeout))


def format_loadtest_report(report):
    """Human-readable report for ``repro loadtest``."""
    host, port = report.address
    where = ("in-process broker" if not report.external_broker
             else "external broker")
    lat = report.latency_ms
    lines = [
        f"broker load test: {report.clients} clients x "
        f"{report.seconds:g} s against {where} at {host}:{port}",
        f"  calls        {report.calls} ({report.relayed} relayed) in "
        f"{report.wall_seconds:.2f} s wall",
        f"  throughput   {report.calls_per_second:,.0f} calls/s",
        f"  latency ms   mean={lat['mean']:.3f} p50={lat['p50']:.3f} "
        f"p95={lat['p95']:.3f} p99={lat['p99']:.3f} max={lat['max']:.3f}",
        f"  errors       {report.errors} errors, {report.timeouts} timeouts",
        f"  upcalls      {report.upcalls_received}/{report.upcalls_expected}"
        f" delivered ({report.lost_upcalls} lost)",
        f"  shutdown     {'clean' if report.clean_shutdown else 'DIRTY'}",
    ]
    if report.broker is not None:
        b = report.broker
        lines.append(
            f"  broker       served={b['calls_served']} "
            f"relayed={b['calls_relayed']} upcalls={b['upcalls_sent']} "
            f"acked={b['upcalls_acked']} expired={b['sessions_expired']}")
    lines.append(f"  verdict      {'OK' if report.ok else 'FAILED'}")
    return "\n".join(lines)
