"""Reproduction of "Agile Application-Aware Adaptation for Mobility".

This package reimplements Odyssey (Noble et al., SOSP 1997) — a platform for
application-aware adaptation in mobile information access — on top of a
deterministic discrete-event simulator.  Every subsystem the paper builds or
depends on has a counterpart here:

- :mod:`repro.sim` — discrete-event simulation kernel (processes, events).
- :mod:`repro.trace` — reference waveforms and replay traces (paper Figs. 7, 13).
- :mod:`repro.net` — trace-modulated network links and hosts (paper §6.1.2).
- :mod:`repro.rpc` — user-level RPC with passive round-trip/throughput logging.
- :mod:`repro.estimation` — bandwidth estimation and agility metrics (Eqs. 1-2).
- :mod:`repro.core` — viceroy, wardens, upcalls, tsops, the Odyssey API.
- :mod:`repro.apps` — video player, web browser, speech recognizer, bitstream.
- :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quick start::

    from repro.experiments import video
    table = video.run_video_experiment(waveform="step-up", trials=5)
    print(table)

See README.md for a tour and DESIGN.md for the full system inventory.
"""

from repro.version import __version__

__all__ = ["__version__"]
