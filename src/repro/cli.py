"""Command-line interface: regenerate any paper artifact from a shell.

Examples::

    python -m repro calibration
    python -m repro waveform urban-walk --format csv
    python -m repro fig8 --waveform step-down
    python -m repro fig10 --trials 5
    python -m repro fig14 --trials 3
    python -m repro scenario --policy odyssey
"""

import argparse
import os
import sys

from repro.version import __version__

#: The source tree this CLI runs from (no build step: src/repro/cli.py).
#: ``repro bench`` anchors its benchmark-file and baseline defaults here
#: so the command works from any working directory.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _cmd_calibration(args):
    from repro.experiments.calibration import calibration_lines

    for line in calibration_lines():
        print(line)
    return 0


def _cmd_waveform(args):
    from repro.trace.replay import serialize_trace
    from repro.trace.scenarios import SCENARIO_MODELS, generate_scenario
    from repro.trace.waveforms import WAVEFORMS, waveform

    if args.name in SCENARIO_MODELS:
        trace = generate_scenario(args.name, duration_seconds=args.duration,
                                  seed=args.seed)
    elif args.name in WAVEFORMS:
        trace = waveform(args.name)
    else:
        trace = waveform(args.name)  # raises with the known-names message
    if args.format == "trace":
        print(serialize_trace(trace), end="")
    else:  # csv of (time, bandwidth)
        print("time_s,bandwidth_bytes_per_s")
        t = 0.0
        while t <= trace.duration:
            print(f"{t:.2f},{trace.bandwidth_at(t):.0f}")
            t += args.step
    return 0


def _cmd_fig8(args):
    from repro.experiments.report import format_supply_result
    from repro.experiments.supply import (
        REFERENCE_WAVEFORMS,
        run_supply_experiment,
    )
    from repro.telemetry.export import series_to_csv, series_to_jsonl

    names = [args.waveform] if args.waveform else list(REFERENCE_WAVEFORMS)
    for name in names:
        result = run_supply_experiment(name, trials=args.trials)
        if args.format == "csv":
            print(series_to_csv(result.merged_series(),
                                header="time_s,estimate_bytes_per_s"), end="")
        elif args.format == "jsonl":
            print(series_to_jsonl(result.merged_series(),
                                  name="fig8.estimate", waveform=name), end="")
        else:
            print(format_supply_result(result))
    return 0


def _cmd_fig9(args):
    from repro.experiments.demand import UTILIZATIONS, run_demand_experiment
    from repro.experiments.report import format_demand_result

    utilizations = [args.utilization] if args.utilization else list(UTILIZATIONS)
    for utilization in utilizations:
        result = run_demand_experiment(utilization, trials=args.trials)
        print(format_demand_result(result))
    return 0


def _cmd_fig10(args):
    from repro.experiments.report import format_video_table
    from repro.experiments.video import run_video_table

    print(format_video_table(run_video_table(trials=args.trials)))
    return 0


def _cmd_fig11(args):
    from repro.experiments.report import format_web_table
    from repro.experiments.web import run_web_table

    print(format_web_table(run_web_table(trials=args.trials)))
    return 0


def _cmd_fig12(args):
    from repro.experiments.report import format_speech_table
    from repro.experiments.speech import run_speech_table

    print(format_speech_table(run_speech_table(trials=args.trials)))
    return 0


def _cmd_fig14(args):
    from repro.experiments.concurrent import run_concurrent_table
    from repro.experiments.report import format_concurrent_table

    print(format_concurrent_table(run_concurrent_table(trials=args.trials)))
    return 0


def _cmd_turbulence(args):
    from repro.experiments.turbulence import (
        format_turbulence,
        run_turbulence_sweep,
    )

    print(format_turbulence(run_turbulence_sweep(trials=args.trials)))
    return 0


def _cmd_adaptation(args):
    from repro.experiments.adaptation import (
        format_adaptation,
        run_adaptation_experiment,
    )

    results = [run_adaptation_experiment(name, trials=args.trials)
               for name in ("step-up", "step-down")]
    print(format_adaptation(results))
    return 0


def _cmd_all(args):
    from repro.experiments.summary import main as run_summary

    run_summary(trials=args.trials, master_seed=args.seed,
                out_path=args.out,
                include_extensions=not args.no_extensions)
    return 0


def _cmd_disconnected(args):
    from repro.experiments.disconnected import run_disconnected_comparison

    cached, uncached = run_disconnected_comparison(
        policy=args.policy, seed=args.seed,
        max_staleness=args.max_staleness,
    )
    print(f"disconnected operation (policy {args.policy}, seed {args.seed})")
    for label, r in (("degraded service", cached), ("no cache", uncached)):
        print(f"  {label}:")
        print(f"    blackout reads : {r.blackout_successes}/"
              f"{r.blackout_attempts} answered "
              f"({100.0 * r.blackout_success_rate:.0f}%)")
        print(f"    served stale   : {r.served_stale} "
              f"(mean staleness {r.mean_staleness:.1f} s)")
        print(f"    failed fast    : {r.failed_disconnected} disconnected, "
              f"{r.failed_timeout} timed out")
        print(f"    writes         : {r.posts_live} live, "
              f"{r.posts_deferred} deferred")
        reintegrated = ", ".join(f"{count} {status}" for status, count
                                 in sorted(r.reintegrated.items())) or "none"
        order = "in order" if r.replay_in_order else "OUT OF ORDER"
        print(f"    reintegration  : {reintegrated} ({order})")
        print(f"    disconnect upcalls: {r.disconnect_upcalls}; "
              f"final state {r.final_state}")
    return 0


def _cmd_fleet(args):
    from repro.fleet import (
        format_fleet_report,
        format_scaling_curve,
        run_fleet,
        run_scaling_curve,
    )

    common = {
        "shards": args.shards, "duration": args.duration,
        "policy": args.policy, "family": args.family,
        "master_seed": args.seed,
    }
    if args.curve:
        points = [int(p) for p in args.curve.split(",") if p.strip()]
        print(format_scaling_curve(run_scaling_curve(points, **common)))
    else:
        print(format_fleet_report(run_fleet(args.clients, **common)))
    return 0


def _chaos_profile_names():
    from repro.chaos import PROFILE_NAMES

    return PROFILE_NAMES


def _cmd_chaos(args):
    from repro.chaos import format_chaos_report, run_chaos_fleet

    if args.sweep:
        from repro.experiments.chaos import (
            format_chaos_matrix,
            run_chaos_matrix,
        )

        matrix = run_chaos_matrix(
            clients=args.clients, shards=args.shards,
            duration=args.duration, family=args.family, policy=args.policy,
            master_seed=args.seed, drill=not args.no_drill,
        )
        for line in format_chaos_matrix(matrix):
            print(line)
        if matrix.total_violations or matrix.total_ops_lost:
            print(f"error: {matrix.total_violations} invariant violations, "
                  f"{matrix.total_ops_lost} deferred ops lost",
                  file=sys.stderr)
            return 1
        return 0

    report = run_chaos_fleet(
        args.clients, shards=args.shards, duration=args.duration,
        profile=args.profile, drill=not args.no_drill,
        policy=args.policy, family=args.family, master_seed=args.seed,
    )
    for line in format_chaos_report(report, verbose=args.verbose):
        print(line)
    if report.total_violations or report.ops_lost:
        print(f"error: {report.total_violations} invariant violations, "
              f"{report.ops_lost} deferred ops lost", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args):
    from repro.parallel import ResultCache

    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root : {stats['root']}")
    print(f"entries    : {stats['entries']} ({stats['bytes']} bytes)")
    for experiment, count in sorted(stats["experiments"].items()):
        print(f"  {experiment:14s} {count}")
    return 0


#: Benchmark files ``repro bench`` runs by default: the substrate
#: microbenchmarks whose speed every figure regeneration rides on, plus
#: the end-to-end suite sweep that records ``suite_wall_seconds``.
BENCH_DEFAULT_PATHS = (
    os.path.join(_REPO_ROOT, "benchmarks", "test_bench_kernel.py"),
    os.path.join(_REPO_ROOT, "benchmarks", "test_bench_estimation_micro.py"),
    os.path.join(_REPO_ROOT, "benchmarks", "test_bench_suite.py"),
    os.path.join(_REPO_ROOT, "benchmarks", "test_bench_fleet.py"),
    os.path.join(_REPO_ROOT, "benchmarks", "test_bench_chaos.py"),
)

BENCH_DEFAULT_BASELINE = os.path.join(_REPO_ROOT, "benchmarks",
                                      "baseline.json")


def _unique_path(path):
    """``path`` if free, else the first ``stem-2``, ``stem-3``, ... that is.

    ``repro bench`` records one capture per invocation; a same-day rerun
    must not silently clobber the earlier trajectory point.
    """
    if not os.path.exists(path):
        return path
    stem, ext = os.path.splitext(path)
    n = 2
    while os.path.exists(f"{stem}-{n}{ext}"):
        n += 1
    return f"{stem}-{n}{ext}"


def _cmd_bench(args):
    import datetime
    import subprocess
    import tempfile

    from repro.bench.baseline import (
        capture_baseline,
        compare_metrics,
        default_directions,
        default_tolerances,
        format_report,
        headline_metrics,
        load_baseline,
        load_report,
        write_baseline,
    )
    from repro.errors import BenchmarkError

    today = datetime.date.today().isoformat()
    try:
        if args.json:
            run_json = args.json
        else:
            fd, run_json = tempfile.mkstemp(prefix="repro-bench-",
                                            suffix=".json")
            os.close(fd)
            paths = args.paths or list(BENCH_DEFAULT_PATHS)
            # Profiled runs swap --benchmark-only for --benchmark-disable
            # (pytest-benchmark rejects the pair): cProfile's hook cannot
            # survive pytest-benchmark's save/restore of sys.getprofile()
            # around its timed sections, and profiled timings are
            # worthless anyway, so each benchmark runs once as a plain
            # call under the profiler.
            command = [
                sys.executable, "-m", "pytest", "-q",
                "--benchmark-disable" if args.profile else "--benchmark-only",
                f"--benchmark-json={run_json}", *paths,
            ]
            if args.jobs != 1:
                command.append(f"--repro-jobs={args.jobs}")
            print(f"# running: {' '.join(command)}", file=sys.stderr)
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.join(_REPO_ROOT, "src"),
                            env.get("PYTHONPATH")) if p
            )
            if args.profile:
                profile_dir = os.path.join(args.out_dir, "profiles")
                env["REPRO_BENCH_PROFILE_DIR"] = profile_dir
                print(f"# profiling into {profile_dir}/ "
                      "(pstats dump + top-20 table per benchmark)",
                      file=sys.stderr)
            proc = subprocess.run(command, env=env)
            if proc.returncode != 0:
                print(f"error: benchmark run failed (exit {proc.returncode})",
                      file=sys.stderr)
                return proc.returncode
            if args.profile:
                # Profiler overhead distorts every timing, so a profiled
                # run never records a trajectory point, never refreshes
                # the baseline, and never judges a comparison.
                print("# profile run: skipping capture and baseline "
                      "comparison (timings carry profiler overhead)",
                      file=sys.stderr)
                return 0
        metrics = headline_metrics(load_report(run_json))
        if not metrics:
            raise BenchmarkError(f"no metrics found in {run_json!r}")
        # Record the perf trajectory: one BENCH_<date>.json per capture,
        # in the same schema as the baseline so a good run can be promoted
        # to benchmarks/baseline.json by copying it.  Never clobber an
        # earlier capture: same-day reruns get a ``-2``/``-3`` suffix.
        trajectory = _unique_path(
            args.out or os.path.join(args.out_dir, f"BENCH_{today}.json")
        )
        write_baseline(
            capture_baseline(metrics, captured_at=today,
                             notes="captured by `repro bench`",
                             directions=default_directions(metrics),
                             tolerances=default_tolerances(metrics)),
            trajectory,
        )
        print(f"# wrote {len(metrics)} metrics to {trajectory}",
              file=sys.stderr)
        if args.update_baseline:
            write_baseline(
                capture_baseline(metrics, captured_at=today,
                                 notes="refreshed by `repro bench "
                                       "--update-baseline`",
                                 directions=default_directions(metrics),
                                 tolerances=default_tolerances(metrics)),
                args.baseline,
            )
            print(f"# refreshed baseline {args.baseline}", file=sys.stderr)
            return 0
        try:
            baseline = load_baseline(args.baseline)
        except BenchmarkError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("hint: seed one with `repro bench --update-baseline`",
                  file=sys.stderr)
            return 2
        only = None
        if args.metrics:
            only = [name for name in
                    (part.strip() for part in args.metrics.split(","))
                    if name]
        report = compare_metrics(current=metrics, baseline_doc=baseline,
                                 tolerance_scale=args.tolerance_scale,
                                 only=only)
        print(format_report(report))
        return 0 if report.ok else 1
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


#: Scenarios the ``telemetry`` command can drive.
TELEMETRY_SCENARIOS = ("fig8-supply", "fig9-demand", "adaptation")


def _run_telemetry_scenario(args):
    if args.scenario == "fig8-supply":
        from repro.experiments.supply import run_supply_trial

        run_supply_trial(args.waveform, seed=args.seed)
    elif args.scenario == "fig9-demand":
        from repro.experiments.demand import run_demand_trial

        run_demand_trial(args.utilization, seed=args.seed)
    else:  # adaptation
        from repro.experiments.adaptation import run_adaptation_trial

        run_adaptation_trial(args.waveform, seed=args.seed)


def _cmd_telemetry(args):
    from repro import telemetry
    from repro.telemetry.export import metrics_summary, write_recorder_jsonl

    with telemetry.enabled() as rec:
        _run_telemetry_scenario(args)
    if args.events_out:
        count, dropped = write_recorder_jsonl(rec, args.events_out)
        print(f"# wrote {count} events to {args.events_out} "
              f"({dropped} dropped)", file=sys.stderr)
    print(metrics_summary(rec.registry.snapshot()), end="")
    return 0


def _cmd_serve(args):
    import asyncio

    from repro.broker import Broker

    async def serve():
        broker = Broker(host=args.host, port=args.port,
                        heartbeat_timeout=args.heartbeat)
        await broker.start()
        host, port = broker.address
        print(f"broker listening on {host}:{port} "
              f"(heartbeat budget {args.heartbeat:g} s)", flush=True)
        try:
            if args.run_seconds is not None:
                await asyncio.sleep(args.run_seconds)
            else:
                while True:
                    await asyncio.sleep(3600.0)
        finally:
            stats = broker.describe()
            await broker.close()
            print(f"broker stopped: {stats['calls_served']} calls served, "
                  f"{stats['calls_relayed']} relayed, "
                  f"{stats['upcalls_sent']} upcalls, "
                  f"{stats['connections_accepted']} connections")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_connect(args):
    import asyncio
    import json

    from repro.broker import BrokerClient
    from repro.errors import ReproError

    async def connect():
        client = BrokerClient(args.host, args.port, args.name)
        await client.connect(timeout=args.timeout)
        print(f"connected to {args.host}:{args.port} as {client.name} "
              f"(namespace {client.namespace})")
        latencies = []
        for _ in range(args.pings):
            latencies.append(await client.ping(timeout=args.timeout))
        if latencies:
            mean_ms = 1000.0 * sum(latencies) / len(latencies)
            worst_ms = 1000.0 * max(latencies)
            print(f"ping x{len(latencies)}: mean {mean_ms:.3f} ms, "
                  f"max {worst_ms:.3f} ms")
        if args.call:
            body = json.loads(args.body) if args.body else None
            reply = await client.call(args.call, body, timeout=args.timeout)
            print(f"{args.call} -> {reply!r}")
        await client.close()

    try:
        asyncio.run(connect())
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_loadtest(args):
    from repro.broker import format_loadtest_report, run_loadtest
    from repro.errors import ReproError

    try:
        report = run_loadtest(clients=args.clients, seconds=args.seconds,
                              host=args.host, port=args.port)
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_loadtest_report(report))
    return 0 if report.ok else 1


def _cmd_live(args):
    import asyncio
    import json

    from repro.errors import ReproError
    from repro.live import format_live_report, run_live_demo

    def narrate(name, at, fraction, rung):
        print(f"  [{at:10.3f}] {name}: fidelity -> {rung} ({fraction:g})",
              flush=True)

    try:
        report = asyncio.run(run_live_demo(
            clients=args.clients, seconds=args.seconds,
            chunk_bytes=args.chunk_bytes, period=args.period,
            high_per_client=args.high, low_per_client=args.low,
            on_transition=None if args.quiet else narrate,
        ))
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"# wrote report to {args.json_out}", file=sys.stderr)
    print(format_live_report(report))
    return 0 if report.ok else 1


def _cmd_scenario(args):
    from repro.experiments.concurrent import PAPER_FIG14, run_concurrent_trial

    result = run_concurrent_trial(args.policy, seed=args.seed)
    video, web, speech = result.video, result.web, result.speech
    paper = PAPER_FIG14[args.policy]
    print(f"policy: {args.policy} (seed {args.seed})")
    print(f"  video : drops {video.stats.drops} (paper {paper[0]}), "
          f"fidelity {video.fidelity:.2f} (paper {paper[1]})")
    print(f"  web   : {web.stats.mean_seconds:.2f} s (paper {paper[2]}), "
          f"fidelity {web.stats.mean_fidelity:.2f} (paper {paper[3]})")
    print(f"  speech: {speech.stats.mean_seconds:.2f} s (paper {paper[4]})")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Agile Application-Aware Adaptation for "
                    "Mobility' (Odyssey, SOSP 1997)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for trial execution "
                             "(default 1 = serial; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache "
                             "(.repro-cache/)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per trial unit; a unit "
                             "that exceeds it aborts the run with a "
                             "ParallelError naming the unit (default: none)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("calibration",
                   help="print every calibrated constant and its provenance"
                   ).set_defaults(fn=_cmd_calibration)

    p = sub.add_parser("waveform", help="emit a reference waveform, the "
                                        "urban walk, or a generated scenario")
    p.add_argument("name", help="step-up, step-down, impulse-up, "
                                "impulse-down, urban-walk, ethernet; or a "
                                "generated family: urban, highway, office, "
                                "robustness")
    p.add_argument("--format", choices=("trace", "csv"), default="trace")
    p.add_argument("--step", type=float, default=0.5,
                   help="sampling step for csv output (seconds)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for generated scenario families")
    p.add_argument("--duration", type=float, default=900.0,
                   help="duration for generated scenario families (seconds)")
    p.set_defaults(fn=_cmd_waveform)

    def parallel_options(p):
        # Mirrors of the global options, so they also parse after the
        # subcommand; SUPPRESS keeps the subparser from clobbering a
        # value the main parser already set.
        p.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                       metavar="N",
                       help="worker processes (default 1; 0 = all cores)")
        p.add_argument("--no-cache", action="store_true",
                       default=argparse.SUPPRESS,
                       help="bypass the on-disk result cache")
        p.add_argument("--timeout", type=float, default=argparse.SUPPRESS,
                       metavar="SECONDS",
                       help="wall-clock watchdog per trial unit")

    def experiment_parser(name, help_text, fn, extra=None):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--trials", type=int, default=3,
                       help="trials per cell (paper uses 5)")
        p.add_argument("--events-out", metavar="PATH",
                       help="run with telemetry enabled and write the event "
                            "trace as JSONL here")
        parallel_options(p)
        if extra:
            extra(p)
        p.set_defaults(fn=fn)
        return p

    experiment_parser(
        "fig8", "supply-estimation agility", _cmd_fig8,
        lambda p: (p.add_argument("--waveform"),
                   p.add_argument("--format", choices=("text", "csv", "jsonl"),
                                  default="text")),
    )
    experiment_parser(
        "fig9", "demand-estimation agility", _cmd_fig9,
        lambda p: p.add_argument("--utilization", type=float),
    )
    experiment_parser("fig10", "video player table", _cmd_fig10)
    experiment_parser("fig11", "web browser table", _cmd_fig11)
    experiment_parser("fig12", "speech recognizer table", _cmd_fig12)
    experiment_parser("fig14", "concurrent applications table", _cmd_fig14)
    experiment_parser("turbulence", "impulse detectability sweep",
                      _cmd_turbulence)
    experiment_parser("adaptation", "end-to-end adaptation agility",
                      _cmd_adaptation)
    experiment_parser(
        "all", "regenerate every table and figure into one report",
        _cmd_all,
        lambda p: (p.add_argument("--out", help="also write the report here"),
                   p.add_argument("--seed", type=int, default=0),
                   p.add_argument("--no-extensions", action="store_true",
                                  help="paper artifacts only")),
    )

    p = sub.add_parser("disconnected",
                       help="disconnected-operation arc: blackout, degraded "
                            "service, deferred writes, reintegration")
    p.add_argument("--policy", default="odyssey",
                   choices=("odyssey", "laissez-faire", "blind-optimism"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-staleness", type=float, default=None,
                   help="staleness bound for degraded reads (seconds; "
                        "default: serve any cached copy)")
    parallel_options(p)
    p.set_defaults(fn=_cmd_disconnected)

    p = sub.add_parser(
        "fleet",
        help="fleet-scale sharded simulation: thousands of adaptive "
             "clients across per-region viceroys, merged deterministically")
    p.add_argument("--clients", type=int, default=1000,
                   help="total simulated clients (default 1000)")
    p.add_argument("--shards", type=int, default=8,
                   help="per-region shards, one simulator each (default 8)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="measured window per shard, simulated seconds")
    p.add_argument("--policy", default="odyssey",
                   choices=("odyssey", "laissez-faire", "blind-optimism"))
    p.add_argument("--family", default="urban",
                   choices=("urban", "highway", "office", "robustness"),
                   help="scenario family each shard draws its trace from")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--curve", metavar="N,N,...",
                   help="run a scaling curve over these client counts "
                        "instead of one fleet (e.g. 250,500,1000)")
    parallel_options(p)
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "chaos",
        help="fleet-scale chaos harness: correlated fault storms, a "
             "mid-run crash–recovery drill, and a continuous "
             "invariant auditor")
    p.add_argument("--clients", type=int, default=256,
                   help="total simulated clients (default 256)")
    p.add_argument("--shards", type=int, default=4,
                   help="per-region shards, one simulator each (default 4)")
    p.add_argument("--duration", type=float, default=30.0,
                   help="measured window per shard, simulated seconds")
    p.add_argument("--profile", default="regional-blackout",
                   choices=_chaos_profile_names(),
                   help="storm profile (default regional-blackout)")
    p.add_argument("--no-drill", action="store_true",
                   help="skip the mid-run viceroy crash–restore drill")
    p.add_argument("--sweep", action="store_true",
                   help="run every profile into a scorecard matrix "
                        "(ignores --profile)")
    p.add_argument("--policy", default="odyssey",
                   choices=("odyssey", "laissez-faire", "blind-optimism"))
    p.add_argument("--family", default="urban",
                   choices=("urban", "highway", "office", "robustness"),
                   help="scenario family each shard draws its trace from")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verbose", action="store_true",
                   help="list every auditor violation row")
    parallel_options(p)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("cache",
                       help="inspect or clear the on-disk result cache")
    p.add_argument("action", choices=("stats", "clear"), nargs="?",
                   default="stats")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the RPC broker: real asyncio TCP, many clients, "
             "namespaced registrations, upcall routing")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default 0 = ephemeral, printed "
                        "on startup)")
    p.add_argument("--heartbeat", type=float, default=10.0,
                   help="seconds of client silence before the session "
                        "is reaped (default 10)")
    p.add_argument("--run-seconds", type=float, default=None,
                   help="serve for this long then exit cleanly "
                        "(default: until interrupted)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("connect",
                       help="connect to a running broker, measure ping "
                            "latency, optionally call one operation")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--name", default="probe",
                   help="client name to register (default 'probe')")
    p.add_argument("--pings", type=int, default=3,
                   help="round-trip probes to send (default 3)")
    p.add_argument("--call", metavar="OP",
                   help="also call this operation once")
    p.add_argument("--body", metavar="JSON",
                   help="JSON body for --call")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-call timeout, seconds (default 5)")
    p.set_defaults(fn=_cmd_connect)

    p = sub.add_parser(
        "loadtest",
        help="hammer a broker with concurrent clients and report "
             "wall-clock throughput, latency percentiles, and upcall "
             "delivery (exit 1 on any error or lost upcall)")
    p.add_argument("--clients", type=int, default=64,
                   help="concurrent asyncio clients (default 64)")
    p.add_argument("--seconds", type=float, default=2.0,
                   help="timed-phase duration, wall seconds (default 2)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="target an already-running broker (default: "
                        "start one in-process on an ephemeral port)")
    p.set_defaults(fn=_cmd_loadtest)

    p = sub.add_parser(
        "live",
        help="run the live adaptation demo: a broker with a square-wave "
             "synthetic link and N adapting clients over real TCP (exit 1 "
             "on lost upcalls or stuck adaptation)")
    p.add_argument("--clients", type=int, default=4,
                   help="adapting clients, alternating video/web ladders "
                        "(default 4)")
    p.add_argument("--seconds", type=float, default=3.0,
                   help="demo duration, wall seconds; the link wave runs "
                        "three phases high/low/high inside it (default 3)")
    p.add_argument("--chunk-bytes", type=int, default=16 * 1024,
                   help="full-fidelity chunk size per period (default 16384)")
    p.add_argument("--period", type=float, default=0.25,
                   help="chunk cadence, seconds (default 0.25)")
    p.add_argument("--high", type=int, default=80_000,
                   help="high-phase link budget per client, bytes/s "
                        "(default 80000)")
    p.add_argument("--low", type=int, default=8_000,
                   help="low-phase link budget per client, bytes/s "
                        "(default 8000)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the live fidelity-transition log")
    p.add_argument("--json-out", metavar="PATH",
                   help="also write the full report as JSON here")
    p.set_defaults(fn=_cmd_live)

    p = sub.add_parser("scenario",
                       help="one urban-walk trial under a chosen policy")
    p.add_argument("--policy", default="odyssey",
                   choices=("odyssey", "laissez-faire", "blind-optimism"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_scenario)

    p = sub.add_parser("telemetry",
                       help="run one instrumented trial and print the "
                            "metrics summary (optionally dumping the "
                            "event trace as JSONL)")
    p.add_argument("--scenario", choices=TELEMETRY_SCENARIOS,
                   default="fig8-supply")
    p.add_argument("--waveform", default="step-up",
                   help="waveform for fig8-supply / adaptation scenarios")
    p.add_argument("--utilization", type=float, default=0.45,
                   help="offered load for the fig9-demand scenario")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events-out", metavar="PATH",
                   help="write the event trace as JSONL here")
    p.set_defaults(fn=_cmd_telemetry)

    p = sub.add_parser(
        "bench",
        help="run the substrate benchmarks, record BENCH_<date>.json, and "
             "compare against benchmarks/baseline.json (exit 1 on "
             "regression)")
    p.add_argument("paths", nargs="*",
                   help="benchmark files to run (default: the kernel and "
                        "estimation microbenchmarks)")
    p.add_argument("--json", metavar="REPORT",
                   help="compare an existing pytest-benchmark JSON report "
                        "instead of running the suite")
    p.add_argument("--baseline", default=BENCH_DEFAULT_BASELINE,
                   help="baseline document to compare against "
                        "(default: benchmarks/baseline.json)")
    p.add_argument("--out-dir", default=".",
                   help="directory for the BENCH_<date>.json capture")
    p.add_argument("--out", metavar="PATH",
                   help="exact path for the capture (overrides --out-dir; "
                        "still never overwrites an existing file)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes inside the benchmarked sweeps "
                        "(passed to pytest as --repro-jobs)")
    p.add_argument("--tolerance-scale", type=float, default=1.0,
                   help="multiply every tolerance band")
    p.add_argument("--metrics", metavar="NAMES",
                   help="comma-separated metric names: compare only these "
                        "(each must exist in baseline and run)")
    p.add_argument("--profile", action="store_true",
                   help="run each benchmark under cProfile, writing a "
                        ".pstats dump and top-20 cumulative table per "
                        "benchmark to OUT_DIR/profiles/ (skips capture "
                        "and comparison: profiled timings are distorted)")
    p.add_argument("--update-baseline", action="store_true",
                   help="refresh the baseline from this run instead of "
                        "comparing")
    p.set_defaults(fn=_cmd_bench)

    return parser


def _run_command(args):
    events_out = getattr(args, "events_out", None)
    if events_out and args.fn is not _cmd_telemetry:
        # Any experiment command gains an event log for free: run it under
        # a live recorder and dump the trace afterwards.  With --jobs > 1
        # the runner merges per-worker event shards into this recorder in
        # unit order, labelling each event with the worker's pid.
        from repro import telemetry
        from repro.telemetry.export import write_recorder_jsonl

        with telemetry.enabled() as rec:
            status = args.fn(args)
        count, dropped = write_recorder_jsonl(rec, events_out)
        print(f"# wrote {count} events to {events_out} "
              f"({dropped} dropped)", file=sys.stderr)
        return status
    return args.fn(args)


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.parallel import (
        ResultCache, overrides, resolve_jobs, resolve_timeout,
    )

    jobs = resolve_jobs(getattr(args, "jobs", 1))
    cache = None if getattr(args, "no_cache", False) else ResultCache()
    timeout = resolve_timeout(getattr(args, "timeout", None))
    # Scoped, not global: repeated main() calls (tests, embedding) must
    # not leak one invocation's settings into the next.
    with overrides(jobs=jobs, cache=cache, timeout=timeout):
        return _run_command(args)


if __name__ == "__main__":
    sys.exit(main())
