"""Processes: generator coroutines driven by the simulator.

A process wraps a generator.  The generator ``yield``\\ s events; each yield
suspends the process until the event is processed, at which point the event's
value is sent back in (or its exception thrown in).  A process is itself an
:class:`~repro.sim.events.Event` that fires when the generator returns, so
processes can wait on each other.
"""

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import _PENDING, Event, Timeout


class Process(Event):
    """A running simulated activity.

    Do not instantiate directly; use :meth:`Simulator.process`.

    The generator may yield:

    - any :class:`Event` (including :class:`Timeout` and other processes);
    - ``None``, as shorthand for "yield to the scheduler, resume immediately".

    The process event succeeds with the generator's return value, or fails
    with any exception that escapes the generator.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on = None
        # Kick off on the next scheduler tick so construction order does not
        # matter within a time step.  A zero-delay timeout is born triggered,
        # so this allocates one slotted object and draws one sequence number
        # — and servers spawn a process per request, so this runs per-RPC.
        start = Timeout(sim, 0.0)
        self._waiting_on = start
        start.add_callback(self._resume)

    @property
    def alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Raise :class:`ProcessInterrupt` inside the process.

        The interrupt is delivered asynchronously (on the next scheduler
        tick) at whatever ``yield`` the process is suspended on.  The event
        being waited on is abandoned — if it later fires, its value is
        discarded.  Interrupting a finished process is an error.
        """
        if not self.alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        poke = Event(self.sim, name="interrupt")

        def deliver(_):
            if not self.alive:
                return  # finished in the interim; nothing to interrupt
            self._waiting_on = None
            self._step(throw=ProcessInterrupt(cause))

        poke.add_callback(deliver)
        poke.succeed()

    # -- internal ------------------------------------------------------------

    def _resume(self, event):
        # Direct slot reads instead of the alive/ok/value properties: this
        # runs once per process switch, the kernel's commonest operation.
        if self._waiting_on is not event or self._value is not _PENDING:
            # Wake-up from an event abandoned by an interrupt, or delivered
            # after the process finished.  Swallow failures: the process was
            # nominally responsible for this event.
            if event is not self and not event._ok:
                event.defuse()
            return
        self._waiting_on = None
        if event._ok:
            self._step(send=event._value)
        else:
            event.defuse()
            self._step(throw=event._value)

    def _step(self, send=None, throw=None):
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            self.fail(exc)
            return
        if target is None:
            # "Yield to the scheduler": a zero-delay timeout, the cheapest
            # born-triggered event.
            target = Timeout(self.sim, 0.0)
        if not isinstance(target, Event):
            self._step(throw=SimulationError(f"process yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
