"""Discrete-event simulation kernel.

The kernel is the substrate standing in for real time on the paper's NetBSD
hosts.  It is a small, deterministic, generator-coroutine engine in the style
of SimPy, built from scratch:

- :class:`Simulator` — the event loop: a heap of timestamped events.
- :class:`Event` — one-shot occurrence that processes may wait on.
- :class:`Process` — a generator whose ``yield``-ed events suspend it.
- :class:`Store` / :class:`Semaphore` — FIFO queues and counting locks used
  to model packet queues, request queues, and single-threaded servers.
- :class:`RngRegistry` — named, independently seeded random streams so
  experiments are reproducible trial by trial.

Time is a float in **seconds**.  Determinism is guaranteed: events scheduled
for the same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties).
"""

from repro.sim.events import AllOf, AnyOf, Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.queues import Semaphore, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "RngRegistry",
    "Semaphore",
    "Simulator",
    "Store",
]
