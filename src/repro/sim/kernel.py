"""The simulator event loop.

A :class:`Simulator` owns virtual time and a priority queue of triggered
events.  ``run()`` pops events in (time, sequence) order and processes them;
processing an event resumes any processes waiting on it.

This module is the hot path under every figure in the paper — millions of
events flow through ``run()`` per experiment — so the loop bodies inline
the pop-advance-process step instead of dispatching through :meth:`step`,
and scheduled calls carry their callback in slots instead of allocating a
closure per call.
"""

import itertools
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class _ScheduledCall(Timeout):
    """A timeout that invokes ``fn(*args)`` when it fires.

    Backing for :meth:`Simulator.call_at`: the callback rides in slots on
    the event itself, so scheduling a call allocates no closure and no
    callback-list entry — one object per call, total.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim, delay, fn, args):
        Timeout.__init__(self, sim, delay)
        self._fn = fn
        self._args = args

    def _process(self):
        callbacks, self.callbacks = self.callbacks, None
        self._fn(*self._args)
        for callback in callbacks:
            callback(self)


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    __slots__ = ("_now", "_heap", "_sequence")

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._sequence = itertools.count()

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ------------------------------------------------

    def event(self, name=None):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event, delay=0.0):
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heappush(self._heap, (self._now + delay, next(self._sequence), event))

    def call_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time ``when``.

        Returns the underlying event; triggering machinery is reused so the
        call is ordered deterministically with other events at ``when``.
        """
        if when < self._now:
            raise SimulationError(f"call_at({when!r}) is in the past (now={self._now!r})")
        return _ScheduledCall(self, when - self._now, callback, args)

    def call_in(self, delay, callback, *args):
        """Run ``callback(*args)`` after ``delay`` seconds."""
        return self.call_at(self._now + delay, callback, *args)

    # -- execution ---------------------------------------------------------

    def peek(self):
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Process exactly one event.

        Raises :class:`SimulationError` if the queue is empty.
        """
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        self._now, _, event = heappop(self._heap)
        event._process()

    def run(self, until=None):
        """Run until the queue drains, or until time/event ``until``.

        ``until`` may be:

        - ``None`` — run to exhaustion;
        - a number — advance to exactly that time (events at later times stay
          queued and ``now`` is left equal to ``until``);
        - an :class:`Event` — run until that event has been processed, and
          return its value.
        """
        heap = self._heap
        pop = heappop
        if until is None:
            while heap:
                self._now, _, event = pop(heap)
                event._process()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline!r}) is in the past (now={self._now!r})")
        while heap and heap[0][0] <= deadline:
            self._now, _, event = pop(heap)
            event._process()
        self._now = deadline
        return None

    def _run_until_event(self, event):
        done = []
        event.add_callback(done.append)
        heap = self._heap
        pop = heappop
        while not done:
            if not heap:
                raise SimulationError(f"queue drained before {event!r} was processed")
            self._now, _, popped = pop(heap)
            popped._process()
        if not event.ok:
            event.defuse()
            raise event.value
        return event.value
