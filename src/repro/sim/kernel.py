"""The simulator event loop.

A :class:`Simulator` owns virtual time and a calendar queue of triggered
events (:mod:`repro.sim.calqueue`).  ``run()`` pops events in (time,
sequence) order and processes them; processing an event resumes any
processes waiting on it.

This module is the hot path under every figure in the paper — millions of
events flow through ``run()`` per experiment — so the loop bodies drain
the calendar queue's current bucket in place instead of dispatching
through :meth:`step`, ``timeout()`` constructs its event without an extra
``__init__`` frame, and scheduled calls carry their callback in slots
instead of allocating a closure per call.  All scheduling funnels through
:meth:`Simulator.schedule`, the one place an event meets the queue.
"""

from bisect import insort
from heapq import heappush

from repro.errors import SimulationError
from repro.sim.calqueue import MAX_BUCKETS, CalendarQueue
from repro.sim.events import _PROCESSED, Event, Timeout
from repro.sim.process import Process

#: ``Timeout.__new__`` resolved once; a module global loads faster than a
#: class-attribute lookup in the per-event allocation path.
_timeout_new = Timeout.__new__


class _ScheduledCall(Timeout):
    """A timeout that invokes ``fn(*args)`` when it fires.

    Backing for :meth:`Simulator.call_at`: the callback rides in slots on
    the event itself, so scheduling a call allocates no closure and no
    callback-list entry — one object per call, total.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim, delay, fn, args):
        # Slot writes mirror Timeout.__init__ (keep in sync) without the
        # extra frame; ``delay`` is already validated by ``call_at``.
        self.sim = sim
        self.delay = delay
        self.callbacks = None
        self._value = None
        self._ok = True
        self._fn = fn
        self._args = args
        sim.schedule(self, delay)

    def _process(self):
        callbacks = self.callbacks
        self.callbacks = _PROCESSED
        self._fn(*self._args)
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    __slots__ = ("_now", "_queue", "_seq")

    def __init__(self):
        self._now = 0.0
        self._queue = CalendarQueue()
        self._seq = 0

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ------------------------------------------------

    def event(self, name=None):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` seconds from now.

        This is the kernel's hottest path — one call per simulated event —
        so the body writes the slots directly instead of running
        ``Timeout.__init__`` (the two must stay field-for-field identical)
        and inlines the queue push instead of calling :meth:`schedule`
        (the push must stay in sync with ``schedule`` and
        ``CalendarQueue.push``): each avoided call frame is measurable on
        every workload.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        event = _timeout_new(Timeout)
        event.sim = self
        event.delay = delay
        event.callbacks = None
        event._value = value
        event._ok = True
        seq = self._seq
        self._seq = seq - 1
        queue = self._queue
        time = self._now + delay
        idx = int(time * queue._inv)
        cur = queue._cur
        if idx > cur:
            if idx - cur < queue._nb:
                queue._buckets[idx & queue._mask].append((-time, seq, event, time))
                queue._count += 1
            else:
                heappush(queue._over, (time, -seq, event))
                if len(queue._over) > queue._nb and queue._nb < MAX_BUCKETS:
                    queue._resize(queue._nb * 2)
        elif queue._sorted:
            insort(queue._buckets[cur & queue._mask], (-time, seq, event, time))
        else:
            queue._buckets[cur & queue._mask].append((-time, seq, event, time))
        return event

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------

    def schedule(self, event, delay=0.0):
        """Queue a triggered ``event`` to be processed ``delay`` seconds on.

        The scheduling entry point for every triggered event: ``succeed``,
        ``fail``, and scheduled calls all land here, so ordering policy
        (FIFO sequence tiebreak, via a down-counting sequence so negated
        ring keys need no per-push negation) lives in one place —
        :meth:`timeout` inlines this body for the same reason it inlines
        the ``Timeout`` constructor.  Keep both in sync with
        ``CalendarQueue.push``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq = self._seq
        self._seq = seq - 1
        queue = self._queue
        cur = queue._cur
        if delay:
            time = self._now + delay
            idx = int(time * queue._inv)
            if idx > cur:
                if idx - cur < queue._nb:
                    queue._buckets[idx & queue._mask].append(
                        (-time, seq, event, time))
                    queue._count += 1
                else:
                    heappush(queue._over, (time, -seq, event))
                    if len(queue._over) > queue._nb and queue._nb < MAX_BUCKETS:
                        queue._resize(queue._nb * 2)
                return
        else:
            # Zero-delay events (every ``succeed``, every process tick)
            # always land in the cursor's bucket; skip the index math.
            time = self._now
        if queue._sorted:
            insort(queue._buckets[cur & queue._mask], (-time, seq, event, time))
        else:
            queue._buckets[cur & queue._mask].append((-time, seq, event, time))

    def call_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time ``when``.

        Returns the underlying event; triggering machinery is reused so the
        call is ordered deterministically with other events at ``when``.
        """
        if when < self._now:
            raise SimulationError(f"call_at({when!r}) is in the past (now={self._now!r})")
        return _ScheduledCall(self, when - self._now, callback, args)

    def call_in(self, delay, callback, *args):
        """Run ``callback(*args)`` after ``delay`` seconds."""
        return self.call_at(self._now + delay, callback, *args)

    # -- execution ---------------------------------------------------------

    def peek(self):
        """Time of the next event, or ``None`` if the queue is empty."""
        head = self._queue.peek()
        return None if head is None else head[0]

    def step(self):
        """Process exactly one event.

        Raises :class:`SimulationError` if the queue is empty.
        """
        if not len(self._queue):
            raise SimulationError("step() on an empty event queue")
        self._now, _, event = self._queue.pop()
        event._process()

    def run(self, until=None):
        """Run until the queue drains, or until time/event ``until``.

        ``until`` may be:

        - ``None`` — run to exhaustion;
        - a number — advance to exactly that time (events at later times stay
          queued and ``now`` is left equal to ``until``);
        - an :class:`Event` — run until that event has been processed, and
          return its value.

        The loops below drain the calendar queue's current bucket in place
        (``queue._enter`` hands back the bucket, sorted on negated keys so
        the earliest event is last) instead of calling ``pop`` per event:
        ``bucket.pop()`` is one O(1) C call, zero-delay events scheduled
        by callbacks insort into the live bucket, and — because the
        queue's ``_count`` excludes the cursor's bucket — no counter is
        touched per event, so a propagating callback exception leaves the
        queue exactly consistent.  Exact ``Timeout`` and ``_ScheduledCall``
        instances (the overwhelming majority of events; neither can fail)
        have their tri-state callback dispatch inlined, saving the
        ``_process`` frame; every other event type dispatches virtually.
        """
        queue = self._queue
        if until is None:
            enter = queue._enter
            timeout_cls, call_cls = Timeout, _ScheduledCall
            while True:
                bucket = enter()
                if bucket is None:
                    return None
                pop = bucket.pop
                while bucket:
                    item = pop()
                    self._now = item[3]
                    event = item[2]
                    if type(event) is timeout_cls:
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        if callbacks is not None:
                            if type(callbacks) is list:
                                for callback in callbacks:
                                    callback(event)
                            else:
                                callbacks(event)
                    elif type(event) is call_cls:
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        event._fn(*event._args)
                        if callbacks is not None:
                            if type(callbacks) is list:
                                for callback in callbacks:
                                    callback(event)
                            else:
                                callbacks(event)
                    else:
                        event._process()
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline!r}) is in the past (now={self._now!r})")
        neg_deadline = -deadline
        enter = queue._enter
        while True:
            bucket = enter()
            if bucket is None or bucket[-1][0] < neg_deadline:
                break
            while bucket:
                item = bucket[-1]
                if item[0] < neg_deadline:
                    break
                del bucket[-1]
                self._now = item[3]
                event = item[2]
                if type(event) is Timeout:
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    if callbacks is not None:
                        if type(callbacks) is list:
                            for callback in callbacks:
                                callback(event)
                        else:
                            callbacks(event)
                elif type(event) is _ScheduledCall:
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    event._fn(*event._args)
                    if callbacks is not None:
                        if type(callbacks) is list:
                            for callback in callbacks:
                                callback(event)
                        else:
                            callbacks(event)
                else:
                    event._process()
        self._now = deadline
        return None

    def _run_until_event(self, event):
        done = []
        event.add_callback(done.append)
        pop = self._queue.pop
        while not done:
            try:
                self._now, _, popped = pop()
            except SimulationError:
                raise SimulationError(
                    f"queue drained before {event!r} was processed") from None
            popped._process()
        if not event.ok:
            event.defuse()
            raise event.value
        return event.value
