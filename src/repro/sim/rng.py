"""Deterministic named random streams.

Every stochastic element of the reproduction (server compute jitter, image
size noise, trial-to-trial variation) draws from a named stream so that:

- two runs with the same master seed are bit-identical, and
- adding a new consumer of randomness does not perturb existing streams.
"""

import hashlib
import random


def _derive_seed(master_seed, name):
    """Derive a 64-bit child seed from (master_seed, name) stably.

    Uses BLAKE2 rather than ``hash()`` so results do not depend on
    ``PYTHONHASHSEED``.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed=0):
        self.master_seed = master_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it on first use.

        The same name always returns the same object within a registry, and
        an identically seeded stream across registries with equal master
        seeds.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn_seed(self, name):
        """The child master seed :meth:`spawn` would use for ``name``.

        Derivation depends only on ``(master_seed, name)`` — never on how
        many streams or children were created before — so child seeds can
        be computed in any order, or in another process, and still agree.
        That independence is what lets parallel trial execution hand each
        worker a bare integer instead of a registry.
        """
        return _derive_seed(self.master_seed, f"spawn:{name}")

    def spawn(self, name):
        """Create a child registry whose master seed is derived from ``name``.

        Used to give each experiment trial its own seed universe.
        """
        return RngRegistry(self.spawn_seed(name))
