"""A calendar (bucket) queue for the simulator's pending-event set.

The kernel schedules events in exactly ascending ``(time, sequence)``
order.  A binary heap does that in O(log n) per operation; this structure
does it in O(1) typical by hashing each item into a ring of fixed-width
time buckets (R. Brown, "Calendar queues: a fast O(1) priority queue
implementation", CACM 1988):

- a push computes the absolute bucket index ``int(time / width)`` and
  appends to that bucket when it lies within the ring's horizon
  (``nbuckets`` buckets ahead of the cursor); items beyond the horizon
  wait in a small overflow heap and are redistributed as the cursor
  advances;
- a pop consumes the cursor's bucket, sorting it once on entry.  The sort
  is over full ``(time, sequence)`` keys, so pop order is the exact global
  order a heap would produce — FIFO among equal times included — and every
  seeded simulation stays byte-identical.

Ring items are stored **key-negated**, as ``(-time, -sequence, payload,
time)``: sorted ascending, the *last* element of a bucket is the earliest
event, so the drain is ``bucket.pop()`` — an O(1) C call with no index
bookkeeping and no consumed-prefix state, and a mid-drain ``peek`` is
simply ``bucket[-1]``.  The fourth element repeats the time un-negated so
consumers read it without allocating a fresh float per pop.  Items that
land in the current, already-sorted bucket (zero-delay events are common:
every process tick is one) are placed by ``bisect.insort``, which stays
correct mid-drain because consumed items are physically gone.  The
overflow heap keeps items in *positive* ``(time, sequence, payload)``
form — ``heapq`` is a min-heap — and they are re-tupled into negated form
when the horizon reaches them.

Population accounting is deliberately lopsided: ``_count`` tracks every
ring item **except those in the cursor's bucket**, whose population is
``len(bucket)``.  The hot operations — pushing into the current bucket
and popping from it — therefore touch no counter at all; the count is
settled once per cursor move (``_advance`` adopts the new bucket by
subtracting its length).  This also makes draining exception-safe with
no ``finally`` bookkeeping: a callback that raises leaves the structure
exactly consistent.

The ring resizes itself: overflow pressure (more overflowed items than
buckets) doubles the ring so the horizon grows to fit the workload, and a
nearly-empty oversized ring is halved when the cursor jumps across idle
time.  Both rebuild the ring in O(n) and are amortized over the pushes
that caused them.  The bucket count is always a power of two (the
constructor rounds up) so the ring index is a bit-mask, not a modulo.

The kernel's ``timeout``/``schedule``/``run`` inline ``push`` and the
bucket drain against ``_buckets``/``_count``/``_sorted`` directly — one
call frame per event is measurable.  Everything outside ``repro.sim``
should treat this class as: ``push``, ``pop``, ``peek``, ``__len__``,
``clear``.
"""

from bisect import insort
from heapq import heapify, heappop, heappush

from repro.errors import SimulationError

#: Default bucket width in simulated seconds.  Chosen so the default ring
#: (256 buckets, 12.8 s horizon) covers the pacing loops of every workload
#: in this repo without overflow, while buckets stay shallow enough that
#: the one-time entry sort is cheap.
DEFAULT_WIDTH = 0.05

#: Default number of buckets.  Bucket counts are always powers of two so
#: the ring index is ``idx & (nbuckets - 1)``.
DEFAULT_BUCKETS = 256

#: Resize floor and ceiling.  The floor keeps degenerate test queues legal;
#: the ceiling bounds memory for sims that schedule far into the future.
MIN_BUCKETS = 4
MAX_BUCKETS = 1 << 15

#: Shrink when the ring is this many times larger than its population.
_SHRINK_FACTOR = 8


class CalendarQueue:
    """Priority queue popping ``(time, sequence, payload)`` in key order.

    ``width`` is the bucket granularity in simulated seconds; ``nbuckets``
    the initial ring size (rounded up to a power of two).  Both only
    affect speed, never pop order.  Times must be non-negative and
    finite; sequence numbers unique and ascending in push order for FIFO
    tie-break among equal times.
    """

    __slots__ = ("_buckets", "_nb", "_mask", "_width", "_inv", "_cur",
                 "_count", "_over", "_sorted")

    def __init__(self, width=DEFAULT_WIDTH, nbuckets=DEFAULT_BUCKETS):
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width!r}")
        if nbuckets < 1:
            raise SimulationError(f"need at least one bucket, got {nbuckets!r}")
        nb = 1
        while nb < nbuckets:
            nb *= 2
        self._buckets = [[] for _ in range(nb)]
        self._nb = nb
        self._mask = nb - 1
        self._width = width
        self._inv = 1.0 / width
        self._cur = 0         # absolute index of the cursor's bucket
        self._count = 0       # ring items NOT in the cursor's bucket
        self._over = []       # positive-form heap of items past the horizon
        self._sorted = False  # cursor's bucket sorted?

    def __len__(self):
        return (self._count + len(self._buckets[self._cur & self._mask])
                + len(self._over))

    def __repr__(self):
        return (f"<CalendarQueue {len(self)} pending, {self._nb} buckets "
                f"x {self._width:g}s, {len(self._over)} overflowed>")

    def clear(self):
        """Drop every pending item (ring geometry is kept)."""
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0
        self._over.clear()
        self._sorted = False

    # -- producing ---------------------------------------------------------

    def push(self, time, seq, payload):
        """Add an item; ``time`` orders it, ``seq`` breaks ties FIFO.

        Mirrored (with a down-counting sequence) by ``Simulator.timeout``
        and ``Simulator.schedule`` — keep the three in sync.
        """
        idx = int(time * self._inv)
        cur = self._cur
        if idx > cur:
            # The common case — a future event — is the first branch taken:
            # within the horizon it is one append, past it one heappush.
            if idx - cur < self._nb:
                self._buckets[idx & self._mask].append((-time, -seq, payload, time))
                self._count += 1
            else:
                heappush(self._over, (time, seq, payload))
                if len(self._over) > self._nb and self._nb < MAX_BUCKETS:
                    self._resize(self._nb * 2)
        elif self._sorted:
            # The cursor's bucket (or, after float truncation at a bucket
            # boundary, nominally before it — clamp; order is carried by
            # the key, not the index).  A sorted bucket stays sorted via
            # insort; consumed items are gone, so full-range bisect is
            # correct even mid-drain.
            insort(self._buckets[cur & self._mask], (-time, -seq, payload, time))
        else:
            self._buckets[cur & self._mask].append((-time, -seq, payload, time))

    # -- consuming ---------------------------------------------------------

    def pop(self):
        """Remove and return the least ``(time, seq, payload)``."""
        bucket = self._enter()
        if bucket is None:
            raise SimulationError("pop from an empty CalendarQueue")
        item = bucket.pop()
        return item[3], -item[1], item[2]

    def peek(self):
        """The least ``(time, seq, payload)`` without removing it."""
        bucket = self._enter()
        if bucket is None:
            return None
        item = bucket[-1]
        return item[3], -item[1], item[2]

    def _enter(self):
        """Advance to the next non-empty bucket, sorted; ``None`` if empty.

        On return the least item is ``bucket[-1]``.  This is the only
        place buckets are sorted, so the kernel's inlined drain can pop
        from the bucket's tail between calls.
        """
        bucket = self._buckets[self._cur & self._mask]
        if bucket:
            if not self._sorted:
                bucket.sort()
                self._sorted = True
            return bucket
        while self._count or self._over:
            self._advance()
            bucket = self._buckets[self._cur & self._mask]
            if bucket:
                bucket.sort()
                self._sorted = True
                return bucket
        return None

    def _advance(self):
        """Move the cursor off an exhausted bucket, pulling overflow in.

        Adopts the new cursor bucket: its items leave ``_count`` here, in
        one subtraction, so pushes into and pops out of the current bucket
        never touch the counter.
        """
        self._sorted = False
        if self._count:
            self._cur += 1
            self._count -= len(self._buckets[self._cur & self._mask])
        elif self._over:
            # The ring is idle: jump straight to the overflow's first
            # bucket instead of stepping, and shrink an oversized ring
            # while nothing is in flight.
            self._cur = int(self._over[0][0] * self._inv)
            target = self._nb
            while (target > MIN_BUCKETS
                   and len(self._over) * _SHRINK_FACTOR < target):
                target //= 2
            if target != self._nb:
                self._resize(target)
                return
        else:
            self._cur += 1
        over = self._over
        if over:
            # Redistribute every overflowed item the horizon now covers.
            inv, cur, nb = self._inv, self._cur, self._nb
            while over and int(over[0][0] * inv) - cur < nb:
                time, seq, payload = heappop(over)
                idx = int(time * inv)
                if idx < cur:
                    idx = cur
                self._buckets[idx & self._mask].append((-time, -seq, payload, time))
                if idx > cur:
                    self._count += 1

    # -- resizing ----------------------------------------------------------

    def _resize(self, nbuckets):
        """Rebuild the ring with ``nbuckets`` buckets.

        Order is carried entirely by the item keys, so items may be
        redistributed in any order — the entry sort restores the exact
        global order.
        """
        ring = []
        for bucket in self._buckets:
            ring.extend(bucket)
        overflow = self._over
        self._buckets = [[] for _ in range(nbuckets)]
        self._nb = nbuckets
        self._mask = nbuckets - 1
        self._count = 0
        self._over = []
        self._sorted = False
        cur, inv = self._cur, self._inv
        for item in ring:
            idx = int(item[3] * inv)
            if idx < cur:
                idx = cur
            if idx - cur < nbuckets:
                self._buckets[idx & self._mask].append(item)
                if idx > cur:
                    self._count += 1
            else:
                self._over.append((item[3], -item[1], item[2]))
        for time, seq, payload in overflow:
            idx = int(time * inv)
            if idx < cur:
                idx = cur
            if idx - cur < nbuckets:
                self._buckets[idx & self._mask].append((-time, -seq, payload, time))
                if idx > cur:
                    self._count += 1
            else:
                self._over.append((time, seq, payload))
        heapify(self._over)
