"""Blocking queues and locks for simulated processes.

These primitives model the queueing that exists everywhere in the real
system: packet queues on links, request queues at servers, and the
single-address-space viceroy/warden thread pool.
"""

from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event


class Store:
    """An unbounded-or-bounded FIFO of items with blocking ``get``.

    ``put(item)`` appends (raising if a finite ``capacity`` would be
    exceeded and returning False); ``get()`` returns an :class:`Event` that
    fires with the oldest item, immediately if one is available, otherwise
    when one arrives.  Waiters are served in FIFO order.
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_get_name")

    def __init__(self, sim, capacity=None, name=None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items = deque()
        self._getters = deque()
        # Precomputed once: get() runs per packet on every link, and an
        # f-string per event was measurable there.
        self._get_name = f"get:{name or 'store'}"

    def __len__(self):
        return len(self._items)

    @property
    def waiters(self):
        """Number of processes currently blocked in ``get``."""
        return len(self._getters)

    def put(self, item):
        """Add ``item``; returns True, or False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.sim, name=self._get_name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_items(self):
        """A snapshot tuple of queued items (oldest first), for inspection."""
        return tuple(self._items)

    def clear(self):
        """Discard all queued items, returning them.  Waiters stay blocked."""
        items = list(self._items)
        self._items.clear()
        return items


class Semaphore:
    """A counting semaphore with FIFO waiters.

    ``acquire()`` returns an event that fires once a unit is held; release
    with ``release()``.  Models exclusive resources such as a serialized
    server CPU.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters", "_acquire_name")

    def __init__(self, sim, capacity=1, name=None):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters = deque()
        self._acquire_name = f"acquire:{name or 'sem'}"

    @property
    def available(self):
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def waiters(self):
        """Number of processes blocked in ``acquire``."""
        return len(self._waiters)

    def acquire(self):
        """Return an event firing when a unit of the semaphore is held."""
        event = Event(self.sim, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release one held unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
