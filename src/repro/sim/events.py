"""Events: one-shot occurrences that simulated processes wait on.

An :class:`Event` has a three-stage life cycle:

1. *pending* — created, not yet triggered; callbacks may be added.
2. *triggered* — given a value (or an exception) and queued on the simulator.
3. *processed* — the simulator has popped it and run its callbacks.

Composite events (:class:`AnyOf`, :class:`AllOf`) let a process wait for the
first or for all of several events, which the RPC layer uses for timeouts.

Callback storage is tri-state to keep the per-event cost at zero
allocations for the two commonest shapes: ``None`` (no callbacks yet), a
bare callable (exactly one — every process switch), or a list (several).
:data:`_PROCESSED` replaces the stored callbacks once the simulator has
run them; a callback added after that point runs immediately.
"""

from repro.errors import SimulationError

_PENDING = object()

#: Sentinel stored in ``Event.callbacks`` once the event has been
#: processed.  Distinct from ``None`` (= pending with no callbacks yet).
_PROCESSED = object()


class Event:
    """A one-shot event owned by a :class:`~repro.sim.kernel.Simulator`.

    Parameters
    ----------
    sim:
        The owning simulator.  Triggering the event enqueues it there.
    name:
        Optional label used in ``repr`` for debugging.

    Events are the kernel's unit of allocation — every timeout, process
    switch, and queue operation creates at least one — so the class is
    slotted and its hot subclasses keep construction allocation-free
    beyond the instance itself.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name
        self.callbacks = None
        self._value = _PENDING
        self._ok = None
        self._defused = False

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"

    @property
    def triggered(self):
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run (the simulator popped the event)."""
        return self.callbacks is _PROCESSED

    @property
    def ok(self):
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self):
        """The value the event succeeded with, or the exception it failed with."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    def succeed(self, value=None, delay=0.0):
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception, delay=0.0):
        """Trigger the event with an exception.

        Waiting processes see the exception raised at their ``yield``.  If no
        process is waiting when the event is processed, the exception
        propagates out of :meth:`Simulator.run` — errors never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay)
        return self

    def defuse(self):
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True

    def add_callback(self, callback):
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately; this makes late waiters safe.
        """
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif callbacks is _PROCESSED:
            callback(self)
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def _process(self):
        """Run callbacks.  Called exactly once, by the simulator."""
        callbacks = self.callbacks
        self.callbacks = _PROCESSED
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)
        if not self._ok and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    Processes obtain these via :meth:`Simulator.timeout`; yielding one
    suspends the process for the given duration.

    This is the hottest allocation site in the kernel, so the constructor
    writes only the slots a live timeout can be asked for: a timeout is
    born triggered (``_ok`` true), never consults ``_defused`` (its
    ``_process`` cannot raise), and derives its label lazily in ``repr``.
    ``Simulator.timeout`` inlines this body — keep them in sync.
    """

    __slots__ = ("delay",)

    #: Shadows the (never-written) ``name`` slot so generic code that
    #: labels events keeps working on timeouts.
    name = property(lambda self: None)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.delay = delay
        self.callbacks = None
        self._value = value
        self._ok = True
        sim.schedule(self, delay)

    def __repr__(self):
        state = "processed" if self.callbacks is _PROCESSED else "ok"
        return f"<Timeout({self.delay:g}) {state} at t={self.sim.now:.6f}>"

    def _process(self):
        # A timeout cannot fail, so the failure re-raise check is dropped.
        callbacks = self.callbacks
        self.callbacks = _PROCESSED
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_unfired")

    def __init__(self, sim, events):
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._unfired = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _results(self):
        return {e: e.value for e in self.events if e.triggered and e.processed}

    def _on_child(self, event):
        if self.triggered:
            if not event.ok:
                # A sibling already completed the condition; swallow the
                # failure so it does not crash the run unseen.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._unfired -= 1
        self._child_fired()

    def _child_fired(self):
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first of ``events`` succeeds.

    The value is a dict mapping each already-processed event to its value
    (normally a single entry).  Fails if any child fails first.
    """

    __slots__ = ()

    def _child_fired(self):
        self.succeed(self._results())


class AllOf(_Condition):
    """Succeeds when all ``events`` have succeeded.

    The value is a dict mapping every event to its value.  Fails as soon as
    any child fails.
    """

    __slots__ = ()

    def _child_fired(self):
        if self._unfired == 0:
            self.succeed(self._results())
