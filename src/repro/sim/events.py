"""Events: one-shot occurrences that simulated processes wait on.

An :class:`Event` has a three-stage life cycle:

1. *pending* — created, not yet triggered; callbacks may be added.
2. *triggered* — given a value (or an exception) and queued on the simulator.
3. *processed* — the simulator has popped it and run its callbacks.

Composite events (:class:`AnyOf`, :class:`AllOf`) let a process wait for the
first or for all of several events, which the RPC layer uses for timeouts.
"""

from heapq import heappush

from repro.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot event owned by a :class:`~repro.sim.kernel.Simulator`.

    Parameters
    ----------
    sim:
        The owning simulator.  Triggering the event enqueues it there.
    name:
        Optional label used in ``repr`` for debugging.

    Events are the kernel's unit of allocation — every timeout, process
    switch, and queue operation creates at least one — so the class is
    slotted and its hot subclasses keep construction allocation-free
    beyond the instance itself.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"

    @property
    def triggered(self):
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run (the simulator popped the event)."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self):
        """The value the event succeeded with, or the exception it failed with."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    def succeed(self, value=None, delay=0.0):
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._ok = True
        self._value = value
        sim = self.sim
        heappush(sim._heap, (sim._now + delay, next(sim._sequence), self))
        return self

    def fail(self, exception, delay=0.0):
        """Trigger the event with an exception.

        Waiting processes see the exception raised at their ``yield``.  If no
        process is waiting when the event is processed, the exception
        propagates out of :meth:`Simulator.run` — errors never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._ok = False
        self._value = exception
        sim = self.sim
        heappush(sim._heap, (sim._now + delay, next(sim._sequence), self))
        return self

    def defuse(self):
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True

    def add_callback(self, callback):
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately; this makes late waiters safe.
        """
        callbacks = self.callbacks
        if callbacks is None:
            callback(self)
        else:
            callbacks.append(callback)

    def _process(self):
        """Run callbacks.  Called exactly once, by the simulator."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    Processes obtain these via :meth:`Simulator.timeout`; yielding one
    suspends the process for the given duration.

    This is the hottest allocation site in the kernel, so the constructor
    inlines both ``Event.__init__`` and the enqueue: a timeout is born
    triggered, and its label is derived lazily in ``repr`` instead of
    formatting a string per instance.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.name = None
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(sim._heap, (sim._now + delay, next(sim._sequence), self))

    def __repr__(self):
        state = "processed" if self.callbacks is None else "ok"
        return f"<Timeout({self.delay:g}) {state} at t={self.sim.now:.6f}>"


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_unfired")

    def __init__(self, sim, events):
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._unfired = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _results(self):
        return {e: e.value for e in self.events if e.triggered and e.processed}

    def _on_child(self, event):
        if self.triggered:
            if not event.ok:
                # A sibling already completed the condition; swallow the
                # failure so it does not crash the run unseen.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._unfired -= 1
        self._child_fired()

    def _child_fired(self):
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first of ``events`` succeeds.

    The value is a dict mapping each already-processed event to its value
    (normally a single entry).  Fails if any child fails first.
    """

    __slots__ = ()

    def _child_fired(self):
        self.succeed(self._results())


class AllOf(_Condition):
    """Succeeds when all ``events`` have succeeded.

    The value is a dict mapping every event to its value.  Fails as soon as
    any child fails.
    """

    __slots__ = ()

    def _child_fired(self):
        if self._unfired == 0:
            self.succeed(self._results())
