"""Declarative fault plans: what goes wrong, when, and for how long.

The paper's agility evaluation (§6, Figs. 8-9) perturbs *supply* through
trace waveforms; production mobility also suffers discrete faults — radio
blackouts, bursts of loss at coverage edges, servers stalling or answering
slowly.  A :class:`FaultPlan` describes such an episode schedule once and
applies it to a world in two complementary ways:

- **Trace-level** (:meth:`FaultPlan.modulate`): blackout windows are folded
  into a :class:`~repro.trace.replay.ReplayTrace` as zero-bandwidth
  stretches, so the link layer itself starves — exactly how the
  trace-modulation daemon would express a radio outage.
- **Runtime-level** (:class:`~repro.faults.injector.FaultInjector`, built by
  ``arm``): loss bursts install packet-drop filters on the modulated links;
  server stalls/slowdowns are scheduled onto the target
  :class:`~repro.rpc.connection.RpcService` instances.

Plans are plain frozen data — reusable across trials, seeds, and policies.
"""

from dataclasses import dataclass

from repro.errors import FaultError
from repro.trace.replay import ReplayTrace, Segment


@dataclass(frozen=True)
class Blackout:
    """Total connectivity loss: link bandwidth pinned to zero for a window."""

    start: float
    duration: float

    def __post_init__(self):
        _check_window(self)

    @property
    def end(self):
        return self.start + self.duration

    def covers(self, t):
        return self.start <= t < self.end


@dataclass(frozen=True)
class LossBurst:
    """A window during which each transmitted packet is dropped with
    probability ``drop_fraction`` (coverage-edge corruption)."""

    start: float
    duration: float
    drop_fraction: float = 0.5

    def __post_init__(self):
        _check_window(self)
        if not 0 < self.drop_fraction <= 1:
            raise FaultError(
                f"drop_fraction must be in (0, 1], got {self.drop_fraction!r}"
            )

    @property
    def end(self):
        return self.start + self.duration

    def covers(self, t):
        return self.start <= t < self.end


@dataclass(frozen=True)
class ServerStall:
    """A server silently drops everything for a window (crash/partition).

    ``port``: limit the stall to the service bound to that port; ``None``
    stalls every service the plan is armed with.
    """

    start: float
    duration: float
    port: str = None

    def __post_init__(self):
        _check_window(self)


@dataclass(frozen=True)
class ServerSlowdown:
    """A server answers, but compute takes ``factor`` times longer
    (overload / cold start)."""

    start: float
    duration: float
    factor: float = 4.0
    port: str = None

    def __post_init__(self):
        _check_window(self)
        if self.factor < 1:
            raise FaultError(f"slowdown factor must be >= 1, got {self.factor!r}")


def _check_window(fault):
    if fault.start < 0:
        raise FaultError(f"{fault.__class__.__name__}: negative start {fault.start!r}")
    if fault.duration <= 0:
        raise FaultError(
            f"{fault.__class__.__name__}: duration must be positive, "
            f"got {fault.duration!r}"
        )


#: Resolution below which adjacent trace cut points are merged, seconds.
CUT_EPSILON = 1e-9


def _merge_blackouts(blackouts):
    """Coalesce overlapping or adjacent blackout windows into single spans.

    Every plan's link faults land on the same modulated trace, so two
    blackouts covering the same instant are one outage, not two; merging
    keeps ``modulate`` and the injector from arming the window twice.
    The result is sorted and pairwise disjoint.
    """
    merged = []
    for blackout in sorted(blackouts, key=lambda b: (b.start, b.end)):
        if merged and blackout.start <= merged[-1].end + CUT_EPSILON:
            last = merged[-1]
            if blackout.end > last.end:
                merged[-1] = Blackout(last.start, blackout.end - last.start)
        else:
            merged.append(blackout)
    return merged


def _check_server_faults(server_faults):
    """Reject overlapping same-kind server faults aimed at the same target.

    ``RpcService.set_outage`` / ``set_slowdown`` keep a single deadline, so
    a second overlapping window would silently overwrite the first (a later
    inner stall could even *shorten* the outage).  A ``port=None`` fault
    targets every armed service, so it conflicts with any port.
    """
    by_kind = {}
    for fault in server_faults:
        by_kind.setdefault(type(fault), []).append(fault)
    for kind, faults in by_kind.items():
        faults.sort(key=lambda f: (f.start, f.start + f.duration))
        for i, fault in enumerate(faults):
            for other in faults[i + 1:]:
                if other.start >= fault.start + fault.duration:
                    break
                if fault.port is None or other.port is None \
                        or fault.port == other.port:
                    raise FaultError(
                        f"overlapping {kind.__name__} windows on port "
                        f"{(fault.port if other.port is None else other.port)!r}: "
                        f"[{fault.start}, {fault.start + fault.duration}) and "
                        f"[{other.start}, {other.start + other.duration}) — "
                        "the second would silently overwrite the first; "
                        "merge them into one window"
                    )


class FaultPlan:
    """An ordered collection of fault episodes.

    Times are absolute simulation seconds (the same clock the armed world
    runs on); when a plan modulates a primed trace, express blackouts in
    the primed timeline.

    Validation: zero-width and negative windows are rejected by each fault
    type; overlapping/adjacent blackouts are merged into single spans (one
    link, one outage); overlapping same-kind server faults on the same
    port raise :class:`~repro.errors.FaultError` instead of silently
    arming twice.
    """

    def __init__(self, faults=(), name=None):
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, (Blackout, LossBurst, ServerStall,
                                      ServerSlowdown)):
                raise FaultError(f"unknown fault type {fault!r}")
        blackouts = _merge_blackouts(
            [f for f in faults if isinstance(f, Blackout)])
        others = [f for f in faults if not isinstance(f, Blackout)]
        _check_server_faults(
            [f for f in others if isinstance(f, (ServerStall, ServerSlowdown))])
        self.faults = tuple(sorted(blackouts + others, key=lambda f: f.start))
        self.name = name or "faults"

    def __repr__(self):
        return f"<FaultPlan {self.name!r} {len(self.faults)} faults>"

    def __iter__(self):
        return iter(self.faults)

    @property
    def blackouts(self):
        return [f for f in self.faults if isinstance(f, Blackout)]

    @property
    def loss_bursts(self):
        return [f for f in self.faults if isinstance(f, LossBurst)]

    @property
    def server_faults(self):
        return [f for f in self.faults
                if isinstance(f, (ServerStall, ServerSlowdown))]

    # -- trace-level application ---------------------------------------------

    def modulate(self, trace, name=None):
        """Fold this plan's blackouts into ``trace``.

        Returns a new :class:`ReplayTrace` whose bandwidth is zero during
        every blackout window; all other parameters (and every original
        transition) are preserved exactly.  Without blackouts the trace is
        returned unchanged.
        """
        blackouts = self.blackouts
        if not blackouts:
            return trace
        end = max(trace.duration, max(b.end for b in blackouts))
        cuts = {0.0, end}
        for start, _ in trace.segment_boundaries_after(0.0):
            cuts.add(start)
        cuts.add(trace.duration)
        for blackout in blackouts:
            cuts.add(min(blackout.start, end))
            cuts.add(min(blackout.end, end))
        ordered = sorted(cuts)
        segments = []
        for lo, hi in zip(ordered, ordered[1:]):
            if hi - lo <= CUT_EPSILON:
                continue
            midpoint = (lo + hi) / 2.0
            dark = any(b.covers(midpoint) for b in blackouts)
            segments.append(Segment(
                hi - lo,
                0.0 if dark else trace.bandwidth_at(midpoint),
                trace.latency_at(midpoint),
            ))
        return ReplayTrace(segments, name=name or f"{trace.name}!{self.name}")

    # -- runtime-level application --------------------------------------------

    def arm(self, sim, network=None, services=(), rng=None):
        """Wire runtime faults into a live world; returns a ``FaultInjector``.

        ``network``: loss bursts install drop filters on its uplink and
        downlink.  ``services``: stall/slowdown targets (matched by ``port``
        when a fault names one).  ``rng``: random stream for probabilistic
        drops (a :class:`~repro.sim.rng.RngRegistry` stream or any object
        with ``random()``); required when the plan has loss bursts.
        """
        from repro.faults.injector import FaultInjector

        return FaultInjector(sim, self, network=network, services=services,
                             rng=rng)
