"""Fault injection and connection-lifecycle hardening.

Declarative fault plans (:class:`FaultPlan`) describe link blackouts, loss
bursts, and server stalls/slowdowns; armed against a world they exercise
the teardown/retry/failover paths the rest of the system must survive.
See docs/architecture.md §8 ("Failure model") and docs/api.md.
"""

from repro.faults.injector import FaultInjector, LinkFaultInjector
from repro.faults.plan import (
    Blackout,
    FaultPlan,
    LossBurst,
    ServerSlowdown,
    ServerStall,
)

__all__ = [
    "Blackout",
    "FaultInjector",
    "FaultPlan",
    "LinkFaultInjector",
    "LossBurst",
    "ServerSlowdown",
    "ServerStall",
]
