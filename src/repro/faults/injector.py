"""Arming fault plans against a live world.

The :class:`FaultInjector` is the runtime half of :mod:`repro.faults`: it
takes a :class:`~repro.faults.plan.FaultPlan` and wires its episodes into a
running simulation —

- loss bursts become packet-drop filters on the modulated links (see
  ``SimplexLink.drop_filter``);
- server stalls call :meth:`~repro.rpc.connection.RpcService.set_outage`
  at the scheduled time;
- server slowdowns call ``set_slowdown`` likewise.

Every episode that actually fires is appended to :attr:`FaultInjector.events`
(``(time, kind, detail)``), so tests and benchmarks can assert that the
faults they asked for really happened.
"""

from repro import telemetry
from repro.errors import FaultError
from repro.faults.plan import LossBurst, ServerSlowdown, ServerStall
from repro.sim.rng import RngRegistry


class LinkFaultInjector:
    """A drop filter implementing scheduled loss bursts on one link."""

    def __init__(self, bursts, rng, on_drop=None):
        self.bursts = tuple(bursts)
        self.rng = rng
        self.on_drop = on_drop
        self.dropped = 0

    def __call__(self, packet, when):
        for burst in self.bursts:
            if burst.covers(when) and self.rng.random() < burst.drop_fraction:
                self.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(when, packet)
                return True
        return False


class FaultInjector:
    """Schedules a plan's runtime faults; see the module docstring."""

    def __init__(self, sim, plan, network=None, services=(), rng=None):
        self.sim = sim
        self.plan = plan
        self.network = network
        self.services = tuple(services)
        self.events = []  # (time, kind, detail), appended as episodes fire
        self.link_injectors = []
        self._arm_links(rng)
        self._arm_servers()

    # -- links ----------------------------------------------------------------

    def _arm_links(self, rng):
        bursts = self.plan.loss_bursts
        if not bursts:
            return
        if self.network is None:
            raise FaultError("plan has loss bursts but no network to arm")
        if rng is None:
            raise FaultError("loss bursts need an rng (probabilistic drops)")
        if isinstance(rng, RngRegistry):
            rng = rng.stream("faults")
        for link in (self.network.uplink, self.network.downlink):
            if link.drop_filter is not None:
                raise FaultError(f"link {link.name!r} already has a drop filter")
            injector = LinkFaultInjector(
                bursts, rng,
                on_drop=lambda when, packet, _name=link.name: self._note_drop(
                    when, _name
                ),
            )
            link.drop_filter = injector
            self.link_injectors.append(injector)

    def _note_drop(self, when, link_name):
        self.events.append((when, "loss", link_name))
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("faults.activations", kind="loss")
            rec.event("fault.loss", link=link_name)

    # -- servers ---------------------------------------------------------------

    def _arm_servers(self):
        for fault in self.plan.server_faults:
            targets = [s for s in self.services
                       if fault.port is None or s.port == fault.port]
            if not targets:
                raise FaultError(
                    f"no armed service matches {fault!r} "
                    f"(ports: {[s.port for s in self.services]})"
                )
            if fault.start < self.sim.now:
                raise FaultError(
                    f"{fault!r} starts in the past (now={self.sim.now!r})"
                )
            for service in targets:
                self.sim.call_at(fault.start, self._fire_server_fault,
                                 fault, service)

    def _fire_server_fault(self, fault, service):
        rec = telemetry.RECORDER
        if isinstance(fault, ServerStall):
            service.set_outage(fault.duration)
            self.events.append((self.sim.now, "stall", service.port))
            if rec.enabled:
                rec.count("faults.activations", kind="stall")
                rec.event("fault.stall", port=service.port,
                          duration=fault.duration)
        elif isinstance(fault, ServerSlowdown):
            service.set_slowdown(fault.factor, fault.duration)
            self.events.append((self.sim.now, "slowdown", service.port))
            if rec.enabled:
                rec.count("faults.activations", kind="slowdown")
                rec.event("fault.slowdown", port=service.port,
                          factor=fault.factor, duration=fault.duration)

    # -- inspection -------------------------------------------------------------

    @property
    def packets_dropped(self):
        """Packets discarded by this injector's loss bursts, both directions."""
        return sum(injector.dropped for injector in self.link_injectors)

    def describe(self):
        """Counters for reports: planned episodes vs fired events."""
        return {
            "plan": self.plan.name,
            "planned": len(self.plan.faults),
            "fired": len(self.events),
            "packets_dropped": self.packets_dropped,
        }
