"""Recorders: the one object instrumented code talks to.

Hot paths follow one idiom::

    from repro import telemetry
    ...
    rec = telemetry.RECORDER
    if rec.enabled:
        rec.count("rpc.calls", connection=cid)

With telemetry disabled (the default) ``RECORDER`` is the module-level
:data:`NULL_RECORDER`, so the cost on a hot path is a module-attribute load
and one attribute check — no label formatting, no allocation, nothing.
:class:`NullRecorder` still implements the full interface (every method a
no-op) so un-guarded call sites stay correct, just a call slower.
"""

from contextlib import contextmanager

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import DEFAULT_TRACE_CAPACITY, EventTrace


class NullRecorder:
    """The disabled mode: absorbs everything, records nothing."""

    enabled = False

    def bind_clock(self, clock):
        pass

    def count(self, name, amount=1.0, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, buckets=None, **labels):
        pass

    def event(self, name, **fields):
        pass

    def sample(self, name, t, value, **fields):
        pass

    def sample_series(self, name, series, **fields):
        pass

    def absorb(self, events, worker=None):
        return 0

    def begin(self, name, parent=None, **fields):
        return None

    def end(self, span_id, **fields):
        pass

    @contextmanager
    def span(self, name, parent=None, **fields):
        yield None


#: The process-wide disabled recorder (shared; it holds no state).
NULL_RECORDER = NullRecorder()


class TelemetryRecorder:
    """A live recorder: metrics registry + event trace on one clock.

    ``clock`` is a zero-arg callable returning the current sim time.  A
    recorder usually outlives the simulator it observes (the CLI enables
    telemetry, then experiments build worlds), so :meth:`bind_clock` lets
    each new world point the recorder at its own clock —
    :class:`~repro.experiments.harness.ExperimentWorld` does this
    automatically when telemetry is enabled.
    """

    enabled = True

    def __init__(self, clock=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
        self._clock = clock or (lambda: 0.0)
        self.registry = MetricsRegistry()
        self.trace = EventTrace(self.now, capacity=trace_capacity)

    def now(self):
        """Current time as the bound clock tells it."""
        return self._clock()

    def bind_clock(self, clock):
        """Point this recorder at a (new) time source."""
        self._clock = clock

    # -- metrics ---------------------------------------------------------------

    def count(self, name, amount=1.0, **labels):
        self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name, value, **labels):
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name, value, buckets=None, **labels):
        self.registry.histogram(name, buckets=buckets, **labels).observe(value)

    # -- trace -----------------------------------------------------------------

    def event(self, name, **fields):
        self.trace.point(name, **fields)

    def sample(self, name, t, value, **fields):
        self.trace.sample(name, t, value, **fields)

    def sample_series(self, name, series, **fields):
        """Record a whole (time, value) series through the trace."""
        for t, value in series:
            self.trace.sample(name, t, value, **fields)

    def absorb(self, events, worker=None):
        """Merge a worker's event shard into this recorder's trace.

        ``worker`` (typically the worker process's pid) is stamped onto
        every absorbed event as a top-level ``"worker"`` key so a merged
        ``--events-out`` stream records which process ran each trial.
        Shard order is preserved; returns the number of events absorbed.
        """
        if worker is None:
            return self.trace.extend(events)
        return self.trace.extend(
            {**event, "worker": worker} for event in events
        )

    def begin(self, name, parent=None, **fields):
        return self.trace.begin(name, parent=parent, **fields)

    def end(self, span_id, **fields):
        self.trace.end(span_id, **fields)

    @contextmanager
    def span(self, name, parent=None, **fields):
        """Context-managed span (for code where sim time may advance inside)."""
        span_id = self.trace.begin(name, parent=parent, **fields)
        try:
            yield span_id
        finally:
            self.trace.end(span_id)
