"""Recorders: the one object instrumented code talks to.

Hot paths follow one idiom::

    from repro import telemetry
    ...
    rec = telemetry.RECORDER
    if rec.enabled:
        rec.count("rpc.calls", connection=cid)

With telemetry disabled (the default) ``RECORDER`` is the module-level
:data:`NULL_RECORDER`, so the cost on a hot path is a module-attribute load
and one attribute check — no label formatting, no allocation, nothing.
:class:`NullRecorder` still implements the full interface (every method a
no-op) so un-guarded call sites stay correct, just a call slower.

With telemetry *enabled*, the live recorder buffers instead of
materializing: ``count``/``gauge``/``observe``/``event``/``sample`` append
one small tuple to a preallocated ring and return.  Label keying, registry
dict lookups, histogram bucketing, and trace-dict construction all happen
later, in :meth:`TelemetryRecorder._flush` — when the ring fills, or when
a reader touches :attr:`TelemetryRecorder.registry` /
:attr:`TelemetryRecorder.trace` (both are flushing properties, so
exporters and tests always observe a fully materialized view).  One ring
carries every kind of record, so relative order — gauge last-value
semantics, trace event order — is exactly what an unbuffered recorder
would produce.
"""

from contextlib import contextmanager

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import DEFAULT_TRACE_CAPACITY, EventTrace

#: Buffered records between flushes.  Big enough that a measurement window
#: rarely flushes inline; small enough that the ring (one machine word per
#: slot) is cache-resident noise.
_BATCH_CAPACITY = 1024


class NullRecorder:
    """The disabled mode: absorbs everything, records nothing."""

    enabled = False

    def bind_clock(self, clock):
        pass

    def count(self, name, amount=1.0, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, buckets=None, **labels):
        pass

    def event(self, name, **fields):
        pass

    def sample(self, name, t, value, **fields):
        pass

    def sample_series(self, name, series, **fields):
        pass

    def absorb(self, events, worker=None):
        return 0

    def begin(self, name, parent=None, **fields):
        return None

    def end(self, span_id, **fields):
        pass

    @contextmanager
    def span(self, name, parent=None, **fields):
        yield None


#: The process-wide disabled recorder (shared; it holds no state).
NULL_RECORDER = NullRecorder()


class TelemetryRecorder:
    """A live recorder: metrics registry + event trace on one clock.

    ``clock`` is a zero-arg callable returning the current sim time.  A
    recorder usually outlives the simulator it observes (the CLI enables
    telemetry, then experiments build worlds), so :meth:`bind_clock` lets
    each new world point the recorder at its own clock —
    :class:`~repro.experiments.harness.ExperimentWorld` does this
    automatically when telemetry is enabled.
    """

    enabled = True

    def __init__(self, clock=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
        self._clock = clock or (lambda: 0.0)
        self._registry = MetricsRegistry()
        self._trace = EventTrace(self.now, capacity=trace_capacity)
        self._pending = [None] * _BATCH_CAPACITY
        self._n = 0

    def now(self):
        """Current time as the bound clock tells it."""
        return self._clock()

    def bind_clock(self, clock):
        """Point this recorder at a (new) time source.

        Buffered records are unaffected: metric updates carry no time, and
        trace records stamp their timestamp when recorded, not at flush.
        """
        self._clock = clock

    # -- the batch ring --------------------------------------------------------

    def _flush(self):
        """Materialize every buffered record, in recording order."""
        pending = self._pending
        n = self._n
        self._n = 0
        registry = self._registry
        trace = self._trace
        for i in range(n):
            op = pending[i]
            pending[i] = None
            kind = op[0]
            if kind == "c":
                registry.counter(op[1], **op[3]).inc(op[2])
            elif kind == "e":
                trace.record({"t": op[1], "kind": "point", "name": op[2],
                              "fields": op[3]})
            elif kind == "g":
                registry.gauge(op[1], **op[3]).set(op[2])
            elif kind == "h":
                registry.histogram(op[1], buckets=op[3], **op[4]).observe(op[2])
            else:  # "s"
                trace.record({"t": op[2], "kind": "sample", "name": op[1],
                              "value": op[3], "fields": op[4]})

    @property
    def registry(self):
        """The metrics registry, flushed so every buffered update is in it."""
        if self._n:
            self._flush()
        return self._registry

    @property
    def trace(self):
        """The event trace, flushed so every buffered record is in it."""
        if self._n:
            self._flush()
        return self._trace

    # -- metrics ---------------------------------------------------------------

    def count(self, name, amount=1.0, **labels):
        n = self._n
        self._pending[n] = ("c", name, amount, labels)
        self._n = n + 1
        if self._n == _BATCH_CAPACITY:
            self._flush()

    def gauge(self, name, value, **labels):
        n = self._n
        self._pending[n] = ("g", name, value, labels)
        self._n = n + 1
        if self._n == _BATCH_CAPACITY:
            self._flush()

    def observe(self, name, value, buckets=None, **labels):
        n = self._n
        self._pending[n] = ("h", name, value, buckets, labels)
        self._n = n + 1
        if self._n == _BATCH_CAPACITY:
            self._flush()

    # -- trace -----------------------------------------------------------------

    def event(self, name, **fields):
        n = self._n
        self._pending[n] = ("e", self._clock(), name, fields)
        self._n = n + 1
        if self._n == _BATCH_CAPACITY:
            self._flush()

    def sample(self, name, t, value, **fields):
        n = self._n
        self._pending[n] = ("s", name, t, value, fields)
        self._n = n + 1
        if self._n == _BATCH_CAPACITY:
            self._flush()

    def sample_series(self, name, series, **fields):
        """Record a whole (time, value) series through the trace."""
        for t, value in series:
            self.sample(name, t, value, **fields)

    def absorb(self, events, worker=None):
        """Merge a worker's event shard into this recorder's trace.

        ``worker`` (typically the worker process's pid) is stamped onto
        every absorbed event as a top-level ``"worker"`` key so a merged
        ``--events-out`` stream records which process ran each trial.
        Shard order is preserved; returns the number of events absorbed.
        """
        trace = self.trace  # flushes, so the shard lands after local records
        if worker is None:
            return trace.extend(events)
        return trace.extend(
            {**event, "worker": worker} for event in events
        )

    def begin(self, name, parent=None, **fields):
        # Spans are rare (per phase, not per event); flush so the begin
        # record sits in trace order relative to buffered points.
        return self.trace.begin(name, parent=parent, **fields)

    def end(self, span_id, **fields):
        self.trace.end(span_id, **fields)

    @contextmanager
    def span(self, name, parent=None, **fields):
        """Context-managed span (for code where sim time may advance inside)."""
        span_id = self.trace.begin(name, parent=parent, **fields)
        try:
            yield span_id
        finally:
            self.trace.end(span_id)
