"""The structured event trace: spans and point events in a ring buffer.

Events are plain dicts so the JSONL exporter is a ``json.dumps`` per line:

- point events — ``{"t", "kind": "point", "name", "fields"}``;
- spans — a ``begin``/``end`` pair sharing a ``span`` id, the ``end``
  carrying the sim-time ``duration``; ``parent`` links nested spans;
- samples — ``{"t", "kind": "sample", "name", "value"}``, the bridge for
  experiment series whose timestamps were recorded by the experiment
  itself (not the trace clock).

The buffer is bounded (a deque with ``maxlen``): a long scenario keeps the
newest events and counts what it shed in :attr:`EventTrace.dropped` instead
of growing without bound.
"""

import itertools
from collections import deque

from repro.errors import TelemetryError

#: Default ring-buffer capacity (events).  A full fig8 trial emits a few
#: tens of thousands of events; this keeps one trial intact.
DEFAULT_TRACE_CAPACITY = 131072


class EventTrace:
    """A bounded, clock-stamped buffer of trace events."""

    def __init__(self, clock, capacity=DEFAULT_TRACE_CAPACITY):
        if capacity <= 0:
            raise TelemetryError(f"trace capacity must be positive, got {capacity!r}")
        self.clock = clock
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self._span_ids = itertools.count(1)
        self._open = {}  # span id -> (name, begin time)
        self.dropped = 0

    def __len__(self):
        return len(self._events)

    def _append(self, event):
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    # -- recording -----------------------------------------------------------

    def point(self, name, **fields):
        """Record an instantaneous event at the current clock time."""
        return self._append({"t": self.clock(), "kind": "point", "name": name,
                             "fields": fields})

    def sample(self, name, t, value, **fields):
        """Record one (time, value) sample of a named series.

        ``t`` is the *sample's* timestamp, supplied by the caller —
        experiments replay series they collected at other moments.
        """
        return self._append({"t": t, "kind": "sample", "name": name,
                             "value": value, "fields": fields})

    def begin(self, name, parent=None, **fields):
        """Open a span; returns its id (pass to :meth:`end`)."""
        span_id = next(self._span_ids)
        now = self.clock()
        self._open[span_id] = (name, now)
        self._append({"t": now, "kind": "begin", "name": name,
                      "span": span_id, "parent": parent, "fields": fields})
        return span_id

    def end(self, span_id, **fields):
        """Close an open span, recording its sim-time duration."""
        try:
            name, began = self._open.pop(span_id)
        except KeyError:
            raise TelemetryError(f"no open span with id {span_id!r}") from None
        now = self.clock()
        return self._append({"t": now, "kind": "end", "name": name,
                             "span": span_id, "duration": now - began,
                             "fields": fields})

    def record(self, event):
        """Append one pre-stamped event dict.

        The recorder's batched flush path: records buffered as op tuples
        already carry their timestamp, so they enter the ring as-is —
        capacity accounting (:attr:`dropped`) applies as usual.
        """
        return self._append(event)

    def extend(self, events):
        """Append pre-stamped event dicts; returns how many were added.

        This is the shard-merge path: a worker process records a trial
        under its own trace, ships ``trace.events()`` back, and the
        parent splices the shard in here.  Events keep their recorded
        timestamps and order; the ring buffer's capacity accounting
        (:attr:`dropped`) applies as usual.
        """
        count = 0
        for event in events:
            self._append(event)
            count += 1
        return count

    # -- inspection ----------------------------------------------------------

    @property
    def open_spans(self):
        """Ids of spans begun but not yet ended."""
        return tuple(self._open)

    def events(self, name=None, kind=None):
        """Buffered events, oldest first, optionally filtered."""
        return [e for e in self._events
                if (name is None or e["name"] == name)
                and (kind is None or e["kind"] == kind)]

    def series(self, name):
        """Reassemble a recorded sample series as [(t, value), ...]."""
        return [(e["t"], e["value"]) for e in self._events
                if e["kind"] == "sample" and e["name"] == name]

    def clear(self):
        self._events.clear()
        self._open.clear()
        self.dropped = 0
