"""Telemetry: sim-time tracing and metrics across every layer.

Odyssey's thesis is that the system *observes* supply and demand and
reports it faithfully; this subsystem is the shared spine that makes our
reproduction's own behaviour observable the same way.  It has three parts:

- a :class:`~repro.telemetry.registry.MetricsRegistry` of counters, gauges,
  and fixed-bucket histograms keyed by name + labels;
- an :class:`~repro.telemetry.trace.EventTrace` of spans (begin/end with
  sim timestamps and parent ids) and point events in a bounded ring buffer;
- exporters (:mod:`repro.telemetry.export`): JSONL event logs, metrics
  summary tables, and the CSV/JSONL series bridge experiments plot through.

Telemetry is **off by default** and costs hot paths one attribute check:

    from repro import telemetry
    ...
    rec = telemetry.RECORDER          # the module-level current recorder
    if rec.enabled:                   # False on the shipped NullRecorder
        rec.count("rpc.calls", connection=cid)

Enable it around a run (the CLI does this for ``--events-out`` and the
``telemetry`` command)::

    with telemetry.enabled(sim=sim) as rec:
        ...run scenario...
    print(metrics_summary(rec.registry.snapshot()))

Instrumented modules must read ``telemetry.RECORDER`` through the module at
call time (never ``from repro.telemetry import RECORDER``), since
:func:`enable`/:func:`disable` rebind it.
"""

from contextlib import contextmanager

from repro.telemetry.export import (
    events_to_jsonl,
    events_to_series,
    metrics_summary,
    series_to_csv,
    series_to_jsonl,
    write_events_jsonl,
)
from repro.telemetry.recorder import NULL_RECORDER, NullRecorder, TelemetryRecorder
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
)
from repro.telemetry.trace import DEFAULT_TRACE_CAPACITY, EventTrace

__all__ = [
    "RECORDER", "enable", "disable", "enabled",
    "TelemetryRecorder", "NullRecorder", "NULL_RECORDER",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "format_series",
    "EventTrace", "DEFAULT_TRACE_CAPACITY",
    "events_to_jsonl", "events_to_series", "write_events_jsonl",
    "metrics_summary", "series_to_csv", "series_to_jsonl",
]

#: The current recorder.  The shipped default is the no-op
#: :data:`NULL_RECORDER`; :func:`enable` swaps in a live one.
RECORDER = NULL_RECORDER


def enable(clock=None, sim=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
    """Install a live :class:`TelemetryRecorder` as :data:`RECORDER`.

    ``sim`` is a convenience for ``clock=lambda: sim.now``.  Worlds built
    later rebind the clock themselves (see
    :class:`~repro.experiments.harness.ExperimentWorld`).  Returns the
    recorder.
    """
    global RECORDER
    if sim is not None:
        clock = lambda: sim.now  # noqa: E731 - the obvious adapter
    RECORDER = TelemetryRecorder(clock=clock, trace_capacity=trace_capacity)
    return RECORDER


def disable():
    """Restore the no-op recorder; returns the recorder that was active."""
    global RECORDER
    previous, RECORDER = RECORDER, NULL_RECORDER
    return previous


@contextmanager
def enabled(clock=None, sim=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
    """Context manager: telemetry on inside, restored to off after."""
    recorder = enable(clock=clock, sim=sim, trace_capacity=trace_capacity)
    try:
        yield recorder
    finally:
        if RECORDER is recorder:
            disable()
