"""Exporters: JSONL event logs, metrics summary tables, series bridges.

Everything here consumes the plain-data forms (``EventTrace.events()``
dicts, ``MetricsRegistry.snapshot()`` dicts, ``(time, value)`` series), so
it works on data recorded in this process or loaded back from disk.
"""

import json

from repro.telemetry.registry import format_series


# -- event logs ---------------------------------------------------------------

def events_to_jsonl(events):
    """One JSON object per line, in event order."""
    return "".join(json.dumps(event, default=str) + "\n" for event in events)


def write_events_jsonl(events, path):
    """Write an event log to ``path``; returns the number of events."""
    events = list(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_to_jsonl(events))
    return len(events)


def write_recorder_jsonl(recorder, path):
    """Drain a live recorder's trace to a JSONL file at ``path``.

    Touching ``recorder.trace`` flushes the recorder's batch ring, so the
    log contains every record buffered at call time.  Returns ``(count,
    dropped)``: events written, and events the bounded trace shed.
    """
    trace = recorder.trace
    return write_events_jsonl(trace.events(), path), trace.dropped


# -- series bridges -----------------------------------------------------------

def series_to_csv(series, header="time,value"):
    """A (time, value) series as CSV text (for external plotting)."""
    lines = [header]
    lines.extend(f"{t:.4f},{v:.1f}" for t, v in series)
    return "\n".join(lines) + "\n"


def series_to_jsonl(series, name="series", **fields):
    """A (time, value) series as JSONL sample events.

    The emitted records match :meth:`EventTrace.sample`'s shape, so a
    series exported here and an in-trace series round-trip identically.
    """
    return events_to_jsonl(
        {"t": t, "kind": "sample", "name": name, "value": v, "fields": fields}
        for t, v in series
    )


def events_to_series(events, name):
    """Inverse bridge: pull sample events for ``name`` out of an event log."""
    return [(e["t"], e["value"]) for e in events
            if e.get("kind") == "sample" and e.get("name") == name]


# -- metrics summaries --------------------------------------------------------

def _table(headers, rows):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(str(c).ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def metrics_summary(snapshot):
    """Render a :meth:`MetricsRegistry.snapshot` as a text report."""
    sections = []
    counters = snapshot.get("counters", [])
    if counters:
        rows = [[format_series(c["name"], c["labels"]), _fmt(c["value"])]
                for c in counters]
        sections.append("counters\n" + _table(["name", "value"], rows))
    gauges = snapshot.get("gauges", [])
    if gauges:
        rows = [[format_series(g["name"], g["labels"]), _fmt(g["value"]),
                 _fmt(g["min"]), _fmt(g["max"]), g["updates"]]
                for g in gauges]
        sections.append("gauges\n" + _table(
            ["name", "value", "min", "max", "updates"], rows))
    histograms = snapshot.get("histograms", [])
    if histograms:
        rows = [[format_series(h["name"], h["labels"]), h["count"],
                 _fmt(h["mean"]), _fmt(h["min"]), _fmt(h["max"])]
                for h in histograms]
        sections.append("histograms\n" + _table(
            ["name", "count", "mean", "min", "max"], rows))
    if not sections:
        return "no metrics recorded\n"
    return "\n\n".join(sections) + "\n"
