"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Every instrument is keyed by ``(name, labels)`` — the same name with
different labels is a different time series, exactly as in Prometheus-style
systems.  Instruments are created lazily on first touch and snapshot to
plain dicts, so exporters and tests never need to know the classes here.

Histograms use *fixed* bucket boundaries chosen at creation: observation is
a bisect into a short tuple, O(log buckets), with no allocation — cheap
enough for per-window RPC paths.
"""

from bisect import bisect_left

from repro.errors import TelemetryError

#: Default histogram buckets (seconds): spans sub-millisecond upcall
#: latencies through multi-second degraded fetches.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def _label_key(labels):
    """Canonical, hashable form of a labels dict."""
    return tuple(sorted(labels.items()))


def format_series(name, labels):
    """Render ``name{k=v, ...}`` the way summaries and exports do."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down; remembers its observed extremes."""

    kind = "gauge"

    def __init__(self):
        self.value = None
        self.min = None
        self.max = None
        self.updates = 0

    def set(self, value):
        self.value = value
        self.updates += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add(self, delta):
        self.set((self.value or 0.0) + delta)

    def snapshot(self):
        return {"value": self.value, "min": self.min, "max": self.max,
                "updates": self.updates}


class Histogram:
    """Fixed-bucket histogram with sum/min/max for mean and range."""

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram buckets must be a sorted, non-empty sequence, "
                f"got {buckets!r}"
            )
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] observes values <= buckets[i]; counts[-1] is overflow.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def snapshot(self):
        buckets = [{"le": le, "count": count}
                   for le, count in zip(self.buckets, self.counts)]
        buckets.append({"le": "inf", "count": self.counts[-1]})
        return {"count": self.count, "sum": self.sum, "mean": self.mean,
                "min": self.min, "max": self.max, "buckets": buckets}


class MetricsRegistry:
    """Lazily-created instruments keyed by name + labels."""

    def __init__(self):
        self._instruments = {}  # (name, label_key) -> instrument

    def __len__(self):
        return len(self._instruments)

    def _get(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(**kwargs)
        elif not isinstance(instrument, cls):
            raise TelemetryError(
                f"metric {format_series(name, labels)!r} is a "
                f"{instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, buckets=None, **labels):
        return self._get(Histogram, name, labels,
                         **({"buckets": buckets} if buckets else {}))

    def snapshot(self):
        """Every instrument as plain data, grouped by kind.

        ``{"counters": [...], "gauges": [...], "histograms": [...]}`` where
        each entry carries ``name``, ``labels``, and the instrument's own
        snapshot — JSON-serializable throughout.
        """
        out = {"counters": [], "gauges": [], "histograms": []}
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}
        for (name, label_key), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0]):
            entry = {"name": name, "labels": dict(label_key)}
            if instrument.kind == "counter":
                entry["value"] = instrument.snapshot()
            else:
                entry.update(instrument.snapshot())
            out[section[instrument.kind]].append(entry)
        return out
