"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package (PEP 660 editable builds need it).  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
