"""Fig. 12 — speech recognizer performance."""

from conftest import run_once

from repro.experiments.report import format_speech_table
from repro.experiments.speech import PAPER_FIG12, run_speech_table


def test_fig12_speech_table(benchmark, trials):
    table = run_once(benchmark, run_speech_table, trials=trials)
    print("\n" + format_speech_table(table))

    for waveform in ("step-up", "step-down", "impulse-up", "impulse-down"):
        hybrid = table.cell(waveform, "hybrid").mean
        remote = table.cell(waveform, "remote").mean
        adaptive = table.cell(waveform, "adaptive").mean
        # "Odyssey correctly reproduces the always-hybrid case, which is
        # optimal at our reference bandwidth levels."
        assert abs(adaptive - hybrid) < 0.05
        assert hybrid <= remote + 0.02
        # Absolute values stay in the paper's neighbourhood.
        paper = PAPER_FIG12[waveform]
        assert abs(hybrid - paper["hybrid"]) < 0.08
        assert abs(remote - paper["remote"]) < 0.10

    # The impulse-up penalty for always-remote is the paper's headline gap.
    assert table.cell("impulse-up", "remote").mean - \
        table.cell("impulse-up", "hybrid").mean > 0.15

    benchmark.extra_info["adaptive_step_up_seconds"] = \
        table.cell("step-up", "adaptive").mean
