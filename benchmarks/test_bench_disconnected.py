"""Extension benchmark — disconnected operation and recovery.

The full disconnected-operation arc (connect → blackout → serve stale →
queue writes → reconnect → reintegrate), run twice on the same seed: once
with degraded-service mode live and once with the warden cache disabled.
The headline number is the blackout-window read success rate — degraded
service must answer strictly more reads during the outage than the
no-cache baseline, which is the measured value of the subsystem.
"""

from conftest import run_once

from repro.experiments.disconnected import (
    BLACKOUT_SECONDS,
    BLACKOUT_START,
    run_disconnected_comparison,
)

SEED = 1


def test_disconnected_operation(benchmark):
    def run_pair():
        return run_disconnected_comparison(policy="odyssey", seed=SEED)

    cached, uncached = run_once(benchmark, run_pair)

    print(f"\nDisconnected operation (blackout {BLACKOUT_SECONDS:.0f} s at "
          f"t={BLACKOUT_START:.0f} s, seed {SEED})")
    print(f"{'':18s} {'answered':>9s} {'stale':>6s} {'failed':>7s} "
          f"{'deferred':>9s} {'reintegrated':>13s}")
    for label, r in (("degraded service", cached), ("no cache", uncached)):
        reint = sum(r.reintegrated.values())
        print(f"{label:18s} {r.blackout_successes:4d}/{r.blackout_attempts:<4d} "
              f"{r.served_stale:6d} "
              f"{r.failed_disconnected + r.failed_timeout:7d} "
              f"{r.posts_deferred:9d} {reint:13d}")

    # Degraded service answers reads during the blackout; the no-cache
    # baseline must be strictly worse — that gap is the subsystem's value.
    assert cached.blackout_attempts > 0
    assert cached.blackout_success_rate > uncached.blackout_success_rate
    assert cached.served_stale > 0
    assert cached.stale_ages  # staleness recorded for every stale serve
    # Both runs walked the state machine to DISCONNECTED (upcalls fired)
    # and recovered: queued writes replayed, in enqueue order.
    for r in (cached, uncached):
        assert r.disconnect_upcalls > 0
        assert r.posts_deferred > 0
        assert sum(r.reintegrated.values()) == r.posts_deferred
        assert r.reintegrated.get("applied", 0) > 0
        assert r.replay_in_order
        assert r.final_state == "connected"
        # The mid-trial checkpoint/restore preserved the live registration.
        assert r.checkpoint_restored == r.checkpoint_registrations
        assert r.checkpoint_dropped == 0

    benchmark.extra_info["cached_success_rate"] = cached.blackout_success_rate
    benchmark.extra_info["uncached_success_rate"] = \
        uncached.blackout_success_rate
    benchmark.extra_info["mean_staleness_s"] = cached.mean_staleness
