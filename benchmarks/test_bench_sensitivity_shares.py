"""Ablation E — sensitivity of the share model (DESIGN decision 4).

The per-connection availability split is "a competed-for part proportional
to recent use, and a fair-share part reflecting an expected lower bound"
(§6.2.1).  The paper gives neither the fair fraction nor the usage horizon;
this sweep shows the reproduction's conclusions are not an artifact of the
calibrated values: the Fig. 9 settling behaviour is stable across a wide
range of both.
"""

from conftest import run_once

from repro.apps.bitstream import build_bitstream
from repro.core.policies import OdysseyPolicy
from repro.core.viceroy import Viceroy
from repro.estimation.agility import settling_time
from repro.experiments.demand import moving_average
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant

FAIR_FRACTIONS = (0.10, 0.25, 0.50)
USAGE_HORIZONS = (4.0, 8.0, 16.0)


def second_stream_settling(fair_fraction, usage_horizon):
    """The Fig. 9 full-utilization experiment under given share parameters."""
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=120))
    policy = OdysseyPolicy(fair_fraction=fair_fraction,
                           usage_horizon=usage_horizon)
    viceroy = Viceroy(sim, network, policy=policy)
    app1, _, _ = build_bitstream(sim, viceroy, network, index=0,
                                 chunk_bytes=32 * 1024)
    app1.start()
    samples = []
    second = {}

    def sampler():
        while True:
            yield sim.timeout(0.25)
            if "cid" in second and viceroy.policy.shares.total is not None:
                samples.append(
                    (sim.now,
                     viceroy.policy.shares.availability(second["cid"]))
                )

    def launch_second():
        yield sim.timeout(30.0)
        app2, warden2, _ = build_bitstream(sim, viceroy, network, index=1,
                                           chunk_bytes=32 * 1024)
        second["cid"] = warden2.primary_connection().connection_id
        app2.start()

    sim.process(sampler())
    sim.process(launch_second())
    sim.run(until=90.0)
    return settling_time(moving_average(samples, 8), 30.0,
                         HIGH_BANDWIDTH / 2, tolerance=0.25, horizon=85.0)


def test_sensitivity_share_parameters(benchmark):
    def sweep():
        results = {}
        for fair in FAIR_FRACTIONS:
            for horizon in USAGE_HORIZONS:
                results[(fair, horizon)] = second_stream_settling(fair, horizon)
        return results

    results = run_once(benchmark, sweep)
    print("\nAblation E — share-model sensitivity "
          "(second-stream settling, seconds)")
    corner = "fair / horizon"
    print(f"{corner:>15s}" + "".join(f"{h:>8.0f}s" for h in USAGE_HORIZONS))
    for fair in FAIR_FRACTIONS:
        row = "".join(f"{results[(fair, h)]:>9.2f}" for h in USAGE_HORIZONS)
        marker = "  <- default row" if fair == 0.25 else ""
        print(f"{fair:>15.2f}{row}{marker}")

    # Robustness: every combination settles within a usable bound, and the
    # calibrated default is not an outlier.
    for (fair, horizon), settling in results.items():
        assert settling < 20.0, (fair, horizon)
    default = results[(0.25, 8.0)]
    best = min(results.values())
    assert default <= best * 3.0
    benchmark.extra_info["settling"] = {
        f"{fair}/{horizon}": value for (fair, horizon), value in results.items()
    }
