"""Telemetry overhead budget: the disabled mode must be (nearly) free.

Every hot path pays one module-attribute load and one ``rec.enabled``
check when telemetry is off.  This benchmark times the estimation hot
path through its instrumented entry point (``ClientShares.on_throughput``)
against the bare computation (``_absorb_throughput``) and fails if the
disabled-mode wrapper costs more than the 5% budget.

Interleaved min-of-N timing: machine noise hits both paths alike, and the
minimum over several passes is the least-noisy estimate of each.
"""

import time

from repro import telemetry
from repro.estimation.share import ClientShares
from repro.rpc.logs import RpcLog
from repro.sim.kernel import Simulator

UPDATES_PER_PASS = 400
PASSES = 7
#: The instrumented entry point, telemetry disabled, may cost at most 5%
#: more than the bare computation (the acceptance budget for this PR).
OVERHEAD_BUDGET = 1.05
#: Timing on shared machines flakes; retry the whole comparison a few
#: times before declaring the budget blown.
ATTEMPTS = 3


def _workload():
    """A fresh eight-connection world, mirroring the estimation microbench."""
    sim = Simulator()
    shares = ClientShares(sim)
    logs = []
    for i in range(8):
        log = RpcLog(sim, f"c{i}")
        shares.register(log)
        logs.append(log)
    sim.run(until=1.0)
    for log in logs:
        log.add_delivery(32 * 1024)
    return sim, shares, logs


def _time_pass(update):
    sim, shares, logs = _workload()
    start = time.perf_counter()
    for i in range(UPDATES_PER_PASS):
        log = logs[i % len(logs)]
        sim.run(until=sim.now + 0.01)
        log.add_delivery(8 * 1024)
        entry = log.add_throughput(sim.now - 0.01, 8 * 1024)
        update(shares, log, entry)
    return time.perf_counter() - start


def _bare(shares, log, entry):
    shares._absorb_throughput(log, entry)


def _instrumented(shares, log, entry):
    shares.on_throughput(log, entry)


def test_disabled_telemetry_within_overhead_budget():
    assert not telemetry.RECORDER.enabled, "telemetry leaked on from another test"
    ratio = baseline = measured = None
    for _ in range(ATTEMPTS):
        baseline = measured = float("inf")
        for _ in range(PASSES):
            baseline = min(baseline, _time_pass(_bare))
            measured = min(measured, _time_pass(_instrumented))
        ratio = measured / baseline
        if ratio <= OVERHEAD_BUDGET:
            break
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-telemetry path is {ratio:.3f}x the bare computation "
        f"(budget {OVERHEAD_BUDGET}x; baseline {baseline:.4f}s, "
        f"measured {measured:.4f}s)"
    )
