"""Extension benchmark — Fig. 14's conclusion across scenario families.

The paper's concurrency result comes from one hand-built trace.  Here the
same three-application experiment runs over *generated* mobility scenarios
(urban, highway, office Markov models) to confirm that Odyssey's advantage
over blind optimism is a property of the approach, not of the trace.
"""

from conftest import run_once

from repro.experiments.concurrent import run_concurrent_trial
from repro.trace.scenarios import SCENARIO_MODELS, generate_scenario

SCENARIO_SECONDS = 240.0


def run_family(family, seed=0):
    trace = generate_scenario(family, duration_seconds=SCENARIO_SECONDS,
                              seed=seed)
    rows = {}
    for policy in ("odyssey", "blind-optimism"):
        result = run_concurrent_trial(policy, seed=seed, trace=trace)
        rows[policy] = result
    return rows


def test_robustness_across_scenarios(benchmark):
    def run_all():
        return {family: run_family(family) for family in SCENARIO_MODELS}

    results = run_once(benchmark, run_all)
    print("\nOdyssey vs blind optimism across generated scenarios "
          f"({SCENARIO_SECONDS:.0f} s each)")
    print(f"{'scenario':10s} {'ody drops':>10s} {'blind drops':>12s} "
          f"{'ody web s':>10s} {'blind web s':>12s}")
    for family, rows in results.items():
        odyssey, blind = rows["odyssey"], rows["blind-optimism"]
        print(f"{family:10s} {odyssey.video.stats.drops:10d} "
              f"{blind.video.stats.drops:12d} "
              f"{odyssey.web.stats.mean_seconds:10.2f} "
              f"{blind.web.stats.mean_seconds:12.2f}")

    for family, rows in results.items():
        odyssey, blind = rows["odyssey"], rows["blind-optimism"]
        # The ordering that matters must hold on every scenario family
        # whose coverage actually fluctuates within the run.
        if blind.video.stats.drops > 50:
            assert odyssey.video.stats.drops < blind.video.stats.drops, family
        assert odyssey.web.stats.mean_seconds <= \
            blind.web.stats.mean_seconds * 1.05, family
    benchmark.extra_info["families"] = list(results)
