"""Extension benchmark — robustness beyond the paper's clean traces.

Two studies:

1. Fig. 14's conclusion across *generated* scenario families (urban,
   highway, office Markov models): Odyssey's advantage over blind optimism
   is a property of the approach, not of the one hand-built trace.
2. The connection lifecycle under injected faults: a bulk client rides out
   a link blackout, a loss burst, a server stall and a server slowdown via
   timeout/retry-with-backoff, survives a mid-run connection failover
   (unregister → teardown upcall → re-register), and its throughput
   degrades gracefully relative to the same seed without faults.
"""

from conftest import run_once

from repro.experiments.concurrent import run_concurrent_trial
from repro.experiments.robustness import (
    default_fault_plan,
    run_robustness_comparison,
)
from repro.trace.scenarios import generate_scenario

SCENARIO_SECONDS = 240.0
#: The concurrency comparison is pinned to the well-covered families; the
#: adversarial "robustness" family (near-dead zones) belongs to the
#: fault-injection study below, where survival — not policy ordering — is
#: the property under test.
COMPARISON_FAMILIES = ("urban", "highway", "office")

FAULT_SEED = 1
FAILOVER_AT = SCENARIO_SECONDS / 2.0


def run_family(family, seed=0):
    trace = generate_scenario(family, duration_seconds=SCENARIO_SECONDS,
                              seed=seed)
    rows = {}
    for policy in ("odyssey", "blind-optimism"):
        result = run_concurrent_trial(policy, seed=seed, trace=trace)
        rows[policy] = result
    return rows


def test_robustness_across_scenarios(benchmark):
    def run_all():
        return {family: run_family(family) for family in COMPARISON_FAMILIES}

    results = run_once(benchmark, run_all)
    print("\nOdyssey vs blind optimism across generated scenarios "
          f"({SCENARIO_SECONDS:.0f} s each)")
    print(f"{'scenario':10s} {'ody drops':>10s} {'blind drops':>12s} "
          f"{'ody web s':>10s} {'blind web s':>12s}")
    for family, rows in results.items():
        odyssey, blind = rows["odyssey"], rows["blind-optimism"]
        print(f"{family:10s} {odyssey.video.stats.drops:10d} "
              f"{blind.video.stats.drops:12d} "
              f"{odyssey.web.stats.mean_seconds:10.2f} "
              f"{blind.web.stats.mean_seconds:12.2f}")

    for family, rows in results.items():
        odyssey, blind = rows["odyssey"], rows["blind-optimism"]
        # The ordering that matters must hold on every scenario family
        # whose coverage actually fluctuates within the run.
        if blind.video.stats.drops > 50:
            assert odyssey.video.stats.drops < blind.video.stats.drops, family
        assert odyssey.web.stats.mean_seconds <= \
            blind.web.stats.mean_seconds * 1.05, family
    benchmark.extra_info["families"] = list(results)


def test_lifecycle_under_faults(benchmark):
    """Blackout + loss + stall + slowdown + mid-run failover, end to end."""
    plan = default_fault_plan(SCENARIO_SECONDS)

    def run_pair():
        return run_robustness_comparison(
            policy="odyssey", seed=FAULT_SEED, duration=SCENARIO_SECONDS,
            faults=plan, failover_at=FAILOVER_AT,
        )

    clean, faulted = run_once(benchmark, run_pair)

    print(f"\nConnection lifecycle under injected faults "
          f"(plan {plan.name!r}, {SCENARIO_SECONDS:.0f} s, "
          f"failover at {FAILOVER_AT:.0f} s)")
    print(f"{'':10s} {'completed':>10s} {'timeouts':>9s} {'retries':>8s} "
          f"{'dropped':>8s} {'mean s':>7s}")
    for label, r in (("clean", clean), ("faulted", faulted)):
        print(f"{label:10s} {r.completed:10d} {r.timeouts:9d} "
              f"{r.retries:8d} {r.packets_dropped:8d} "
              f"{r.mean_fetch_seconds:7.2f}")

    # The client survives and makes progress through every fault episode.
    assert faulted.completed > 0
    assert faulted.upcall_failures == 0
    # Retry-with-backoff actually engaged: faults cost timeouts, and every
    # timed-out attempt was re-issued rather than abandoned.
    assert faulted.timeouts > 0
    assert faulted.retries > 0
    assert faulted.exhausted == 0
    # The loss burst really dropped packets, and both scheduled server
    # faults fired (fault_events counts per-packet drops plus one event
    # per stall/slowdown activation).
    assert faulted.packets_dropped > 0
    assert faulted.fault_events >= faulted.packets_dropped + 2
    # Faults degrade throughput but never below the floor of usefulness.
    assert faulted.completed <= clean.completed
    assert faulted.completed > clean.completed * 0.5
    # The mid-run unregister tore down the live registration with an
    # upcall notice, and the client re-registered on the replacement.
    for r in (clean, faulted):
        assert r.failovers == 1
        assert r.teardown_notices == 1
        assert r.registrations >= 2

    benchmark.extra_info["faulted_completed"] = faulted.completed
    benchmark.extra_info["clean_completed"] = clean.completed
