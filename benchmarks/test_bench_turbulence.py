"""Extension benchmark — the detection boundary of §6.1.1's impulses.

Validates the paper's choice of a 2-second impulse ("large enough to be
detectable by a sensitive system, yet small enough to be missed by an
insensitive one") by sweeping the width and locating where detectability
actually begins.
"""

from conftest import run_once

from repro.experiments.turbulence import format_turbulence, run_turbulence_sweep


def test_turbulence_detection_boundary(benchmark, trials):
    result = run_once(benchmark, run_turbulence_sweep, trials=trials)
    print("\n" + format_turbulence(result))

    # Visibility is (weakly) monotone in impulse width.
    widths = sorted(result.widths)
    means = [result.visibility[w].mean for w in widths]
    for earlier, later in zip(means, means[1:]):
        assert later >= earlier - 0.12  # allow trial noise

    # The paper's 2-second impulse is comfortably detectable...
    assert result.visibility[2.0].mean > 0.6
    # ...long impulses are fully tracked...
    assert result.visibility[8.0].mean > 0.85
    # ...and the quarter-second impulse is mostly missed.
    assert result.visibility[0.25].mean < 0.55
    minimum = result.minimum_detectable_width()
    assert minimum is not None and minimum <= 2.0
    benchmark.extra_info["min_detectable_width_s"] = minimum
    benchmark.extra_info["visibility"] = {
        str(w): result.visibility[w].mean for w in widths
    }
