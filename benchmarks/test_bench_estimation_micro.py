"""Microbenchmarks of the estimation hot path.

The viceroy processes a log entry on every window of every connection; in
the concurrent scenario that is tens of entries per simulated second.
These benchmarks keep that path honest.
"""

from repro.estimation.agility import settling_time
from repro.estimation.share import ClientShares
from repro.rpc.logs import RpcLog
from repro.sim.kernel import Simulator


def test_share_update_throughput(benchmark):
    """Cost of absorbing one throughput entry with eight live connections."""
    sim = Simulator()
    shares = ClientShares(sim)
    logs = []
    for i in range(8):
        log = RpcLog(sim, f"c{i}")
        shares.register(log)
        logs.append(log)

    # Pre-populate delivery history.
    sim.run(until=1.0)
    for log in logs:
        log.add_delivery(32 * 1024)

    def absorb_batch():
        for i in range(200):
            log = logs[i % len(logs)]
            sim.run(until=sim.now + 0.01)
            log.add_delivery(8 * 1024)
            entry = log.add_throughput(sim.now - 0.01, 8 * 1024)
            shares.on_throughput(log, entry)
        return shares.total

    total = benchmark(absorb_batch)
    assert total and total > 0


def test_settling_time_on_long_series(benchmark):
    """Agility metrics over a 10k-sample series (post-processing cost)."""
    series = [(t * 0.01, 40960.0 if t < 5000 else 122880.0)
              for t in range(10_000)]

    def measure():
        return settling_time(series, 50.0, 122880.0, tolerance=0.1)

    assert benchmark(measure) == 0.0
