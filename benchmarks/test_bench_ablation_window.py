"""Ablation C — bulk-transfer window size vs Step-Down settling.

The paper explains its 2.0 s Step-Down settling: "we generate a throughput
estimate only at the end of a window of data.  If bandwidth falls abruptly
while a large window of data is being transmitted, the drop is not recorded
until the last packet of the window arrives."  Larger windows therefore
settle slower.
"""

from conftest import run_once

from repro.apps.bitstream import build_bitstream
from repro.core.viceroy import Viceroy
from repro.estimation.agility import settling_time
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, step_down

WINDOW_SIZES = (8 * 1024, 32 * 1024, 128 * 1024)


def settle_with_window(window_bytes):
    sim = Simulator()
    trace = step_down().shifted(30.0)
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    app, warden, server = build_bitstream(
        sim, viceroy, network,
        chunk_bytes=max(window_bytes * 2, 64 * 1024),
        window_bytes=window_bytes,
    )
    app.start()
    sim.run(until=90.0)
    series = [(t - 30.0, v) for t, v in viceroy.policy.shares.total_history]
    return settling_time(series, 30.0, LOW_BANDWIDTH, tolerance=0.10,
                         horizon=59.0)


def test_ablation_window_size(benchmark):
    def sweep():
        return {w: settle_with_window(w) for w in WINDOW_SIZES}

    settling = run_once(benchmark, sweep)
    print("\nAblation C — transfer window size vs Step-Down settling")
    for window, seconds in settling.items():
        note = "  <- default (paper-scale)" if window == 32 * 1024 else ""
        print(f"  {window // 1024:4d} KiB window: settling {seconds:5.2f} s{note}")

    # Bigger windows mean later throughput entries and slower settling.
    assert settling[8 * 1024] <= settling[32 * 1024] * 1.2
    assert settling[32 * 1024] < settling[128 * 1024]
    # The default window reproduces the paper's ~2 s figure.
    assert settling[32 * 1024] < 4.0
    benchmark.extra_info["settling_by_window"] = {
        str(k): v for k, v in settling.items()
    }
