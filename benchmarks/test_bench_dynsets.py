"""Extension benchmark — dynamic sets (paper §8 long-term work).

"Search of distributed repositories performs poorly when mobile ... We plan
to explore a solution that uses dynamic sets."  Measures the aggregate
I/O-latency reduction of completion-order iteration over a mixed result set
at the paper's low mobile bandwidth.
"""

from conftest import run_once

from repro.core.dynsets import DynamicSet, iterate_in_order
from repro.net.network import Network
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, constant

#: A search result set: two large documents among ten small ones, listed
#: large-first (the unlucky order a naive iterator would follow).
RESULT_SET = (
    [("report.ps", 300_000), ("scan.tiff", 200_000)]
    + [(f"page{i}.html", 6_000) for i in range(10)]
)


def build_fetch(sim):
    network = Network(sim, constant(LOW_BANDWIDTH, duration=3600))
    server = network.add_host("repository")
    service = RpcService(sim, server, "objects")
    service.register(
        "get",
        lambda body: ServerReply(
            body=body["name"], bulk=service.make_bulk(body["nbytes"])
        ),
    )
    connection = RpcConnection(sim, network, "repository", "objects", "search")

    def fetch(spec):
        name, nbytes = spec
        yield from connection.fetch("get", body={"name": name, "nbytes": nbytes})
        return name

    return fetch


def run_comparison():
    sim = Simulator()
    dynset = DynamicSet(sim, RESULT_SET, build_fetch(sim), parallelism=4)
    sim.process(dynset.iterate())
    sim.run()

    sim2 = Simulator()
    process = sim2.process(iterate_in_order(sim2, RESULT_SET, build_fetch(sim2)))
    sim2.run()
    _, serial_stats = process.value
    return dynset.stats, serial_stats


def test_dynamic_sets_aggregate_latency(benchmark):
    dyn_stats, serial_stats = run_once(benchmark, run_comparison)
    speedup = serial_stats.aggregate_latency / dyn_stats.aggregate_latency
    first = (serial_stats.first_result_latency
             / dyn_stats.first_result_latency)
    print("\nDynamic sets at 40 KB/s over a 12-member search result set")
    print(f"  aggregate latency : serial {serial_stats.aggregate_latency:7.1f} s"
          f"  dynamic {dyn_stats.aggregate_latency:7.1f} s"
          f"  ({speedup:.1f}x better)")
    print(f"  first result      : serial {serial_stats.first_result_latency:7.2f} s"
          f"  dynamic {dyn_stats.first_result_latency:7.2f} s"
          f"  ({first:.0f}x better)")
    print(f"  makespan          : serial {serial_stats.makespan:7.1f} s"
          f"  dynamic {dyn_stats.makespan:7.1f} s (link-bound, unchanged)")

    assert speedup > 1.3
    assert dyn_stats.first_result_latency < serial_stats.first_result_latency
    # The link is the bottleneck either way: total time is about the same.
    assert dyn_stats.makespan < serial_stats.makespan * 1.25
    benchmark.extra_info["aggregate_speedup"] = speedup
