"""Ablation A — how the Eq. 1 measurement weight shapes agility.

The paper prints Eq. 1 ambiguously; we read α (0.875 for throughput) as the
weight on the *measurement*.  This ablation shows why: with the weight on
the old estimate instead (gain 0.125), Step-Down settling blows out by an
order of magnitude, far from the paper's 2.0 s.
"""

from conftest import run_once

from repro.apps.bitstream import build_bitstream
from repro.core.policies import OdysseyPolicy
from repro.core.viceroy import Viceroy
from repro.estimation.agility import settling_time
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, step_down

GAINS = (0.125, 0.5, 0.875, 1.0)


def settle_with_gain(gain):
    sim = Simulator()
    trace = step_down().shifted(30.0)
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network, policy=OdysseyPolicy(gain=gain))
    app, warden, server = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=90.0)
    series = [(t - 30.0, v) for t, v in viceroy.policy.shares.total_history]
    return settling_time(series, 30.0, LOW_BANDWIDTH, tolerance=0.10,
                         horizon=59.0)


def test_ablation_ewma_gain(benchmark):
    def sweep():
        return {gain: settle_with_gain(gain) for gain in GAINS}

    settling = run_once(benchmark, sweep)
    print("\nAblation A — Eq. 1 measurement weight vs Step-Down settling")
    for gain, seconds in settling.items():
        note = "  <- paper's constant" if gain == 0.875 else ""
        print(f"  gain {gain:5.3f}: settling {seconds:6.2f} s{note}")

    # Settling improves monotonically with measurement weight.
    assert settling[0.125] > settling[0.5] >= settling[0.875] * 0.9
    # The paper's 0.875 is consistent with its reported 2.0 s...
    assert settling[0.875] < 4.0
    # ...while the inverted reading is nowhere near it.
    assert settling[0.125] > 8.0
    benchmark.extra_info["settling_by_gain"] = {
        str(k): v for k, v in settling.items()
    }
