"""Fleet scale end to end: ``fleet_*`` headline metrics.

One benchmark runs a mid-sized fleet (256 clients over 4 shards) through
the trial runner at the configured ``--repro-jobs`` and records the
headline numbers the baseline gates: wall seconds, client throughput, and
the simulated QoE aggregates whose drift would signal an estimation or
registration-path regression.  Determinism is asserted in the same run:
with ``--repro-jobs > 1`` the serial fleet must merge to the identical
fingerprint.
"""

from conftest import run_once

from repro.fleet import run_fleet

#: Big enough that the O(registrations) paths dominate, small enough for
#: the perf gate: 64 clients per shard, one minute simulated.
FLEET_CLIENTS = 256
FLEET_SHARDS = 4
FLEET_DURATION = 30.0


def test_fleet_scale(benchmark, jobs):
    report = run_once(
        benchmark, run_fleet, FLEET_CLIENTS, shards=FLEET_SHARDS,
        duration=FLEET_DURATION, jobs=jobs, cache=None,
    )
    assert len(report.records) == FLEET_CLIENTS
    benchmark.extra_info["fleet_wall_seconds"] = report.wall_seconds
    benchmark.extra_info["fleet_clients_per_second"] = \
        FLEET_CLIENTS / report.wall_seconds
    benchmark.extra_info["fleet_mean_fidelity"] = report.mean_fidelity
    benchmark.extra_info["fleet_fairness"] = report.fairness
    benchmark.extra_info["fleet_upcalls"] = report.total_upcalls
    if jobs > 1:
        serial = run_fleet(FLEET_CLIENTS, shards=FLEET_SHARDS,
                           duration=FLEET_DURATION, jobs=1, cache=None)
        assert serial.fingerprint() == report.fingerprint()
