"""Ablation B — the round-trip rise cap (paper §6.2.1).

"Noise in round trip estimates can severely impact bandwidth estimates; to
discount anomalous increases in round trip time, we cap the percentage rise
possible at each estimate."  Without the cap, round trips observed while the
connection's own transfers queue the link inflate R, Eq. 2's denominator
collapses, and bandwidth estimates spike far above the physical link.
"""

from conftest import run_once

from repro.core.api import OdysseyAPI
from repro.core.policies import OdysseyPolicy
from repro.core.viceroy import Viceroy
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, constant


def max_estimate_spike(rise_cap):
    """Play video at low bandwidth; return the largest total-bandwidth
    estimate produced (the truth is LOW_BANDWIDTH)."""
    sim = Simulator()
    network = Network(sim, constant(LOW_BANDWIDTH, duration=600))
    policy = OdysseyPolicy(
        estimator_kwargs={"rtt_rise_cap": rise_cap, "eq2_rtt": "smoothed"}
    )
    viceroy = Viceroy(sim, network, policy=policy)
    store = MovieStore()
    store.add(Movie("m", n_frames=400))
    build_video(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "xanim")
    player = VideoPlayer(sim, api, "xanim", "/odyssey/video", "m",
                         policy="jpeg50")
    player.start()
    sim.run(until=40.0)
    history = viceroy.policy.shares.total_history
    return max(v for _, v in history)


def test_ablation_rtt_rise_cap(benchmark):
    def sweep():
        return {
            "capped (0.10)": max_estimate_spike(0.10),
            "loose (0.50)": max_estimate_spike(0.50),
            "uncapped": max_estimate_spike(10.0),
        }

    spikes = run_once(benchmark, sweep)
    print("\nAblation B — RTT rise cap vs worst-case estimate spike "
          f"(truth: {LOW_BANDWIDTH} B/s)")
    for label, spike in spikes.items():
        print(f"  {label:14s}: max estimate {spike / 1024:8.1f} KB/s "
              f"({spike / LOW_BANDWIDTH:4.1f}x truth)")

    # Looser caps admit bigger anomalies; the paper's defense matters.
    assert spikes["capped (0.10)"] <= spikes["loose (0.50)"] * 1.05
    assert spikes["capped (0.10)"] <= spikes["uncapped"]
    assert spikes["capped (0.10)"] < LOW_BANDWIDTH * 2.2
    benchmark.extra_info["spikes"] = {k: v for k, v in spikes.items()}
