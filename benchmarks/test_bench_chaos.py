"""Chaos harness end to end: ``chaos_*`` headline metrics.

One benchmark storms the same mid-sized fleet the ``fleet_*`` gate uses
(256 clients over 4 shards) with the regional-blackout profile and the
mid-run crash–recovery drill, then records the graceful-degradation
scorecard.  Two of the gated metrics are *hard zero* gates: the baseline
pins ``chaos_violations`` and ``chaos_ops_lost`` at 0 with direction
``lower``, so a single auditor violation or lost deferred op fails the
perf gate outright.  Determinism is asserted in the same run: with
``--repro-jobs > 1`` the serial storm must merge to the identical
fingerprint.
"""

from conftest import run_once

from repro.chaos import run_chaos_fleet

CHAOS_CLIENTS = 256
CHAOS_SHARDS = 4
CHAOS_DURATION = 30.0
CHAOS_PROFILE = "regional-blackout"


def test_chaos_storm(benchmark, jobs):
    report = run_once(
        benchmark, run_chaos_fleet, CHAOS_CLIENTS, shards=CHAOS_SHARDS,
        duration=CHAOS_DURATION, profile=CHAOS_PROFILE, jobs=jobs,
        cache=None,
    )
    assert len(report.fleet.records) == CHAOS_CLIENTS
    assert report.total_violations == 0, report.violations
    assert report.ops_lost == 0
    # The drill must have carried live deferred state through the
    # crash–restore cycle, or it tested nothing.
    assert report.drill_deferred_ops > 0
    card = report.scorecard()
    benchmark.extra_info["chaos_wall_seconds"] = report.wall_seconds
    benchmark.extra_info["chaos_clients_per_second"] = \
        CHAOS_CLIENTS / report.wall_seconds
    for key in ("chaos_violations", "chaos_ops_lost", "chaos_marks_deferred",
                "chaos_fidelity_floor", "chaos_recovery_seconds",
                "chaos_mean_fidelity", "chaos_drill_deferred_ops",
                "chaos_drill_dropped_registrations"):
        benchmark.extra_info[key] = card[key]
    if jobs > 1:
        serial = run_chaos_fleet(CHAOS_CLIENTS, shards=CHAOS_SHARDS,
                                 duration=CHAOS_DURATION,
                                 profile=CHAOS_PROFILE, jobs=1, cache=None)
        assert serial.fingerprint() == report.fingerprint()
