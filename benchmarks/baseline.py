#!/usr/bin/env python
"""Capture or enforce the benchmark baseline from the command line.

Capture a fresh baseline from a pytest-benchmark run report::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_kernel.py \
        --benchmark-only --benchmark-json run.json
    python benchmarks/baseline.py capture --json run.json

Compare a run against the committed baseline (exit 1 on regression or a
baseline metric missing from the run; exit 2 on malformed inputs)::

    python benchmarks/baseline.py compare --json run.json

CI's ``perf-gate`` job runs exactly the compare form.  ``repro bench``
wraps the whole loop (run + capture + compare) for local use.
"""

import argparse
import datetime
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.baseline import (  # noqa: E402 - path bootstrap above
    DEFAULT_TOLERANCE,
    capture_baseline,
    compare_metrics,
    default_tolerances,
    format_report,
    headline_metrics,
    load_baseline,
    load_report,
    write_baseline,
)
from repro.errors import BenchmarkError  # noqa: E402

DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baseline.json"


def _cmd_capture(args):
    metrics = headline_metrics(load_report(args.json))
    if not metrics:
        raise BenchmarkError(f"no metrics found in {args.json!r}")
    doc = capture_baseline(
        metrics,
        tolerance=args.tolerance,
        captured_at=datetime.date.today().isoformat(),
        notes=args.notes,
        tolerances=default_tolerances(metrics),
    )
    write_baseline(doc, args.out)
    print(f"captured {len(metrics)} metrics to {args.out}")
    return 0


def _cmd_speedup(args):
    """Gate the parallel sweep's measured speedup (CI's --jobs check)."""
    current = headline_metrics(load_report(args.json))
    observed = current.get(args.metric)
    if observed is None:
        raise BenchmarkError(
            f"metric {args.metric!r} absent from {args.json!r} — was the "
            "benchmark run with --repro-jobs > 1?"
        )
    verdict = "PASS" if observed >= args.min else "FAIL"
    print(f"{verdict}: {args.metric} = {observed:.2f}x "
          f"(required >= {args.min:.2f}x)")
    return 0 if observed >= args.min else 1


def _cmd_compare(args):
    current = headline_metrics(load_report(args.json))
    baseline = load_baseline(args.baseline)
    only = None
    if args.metrics:
        only = [name for name in
                (part.strip() for part in args.metrics.split(",")) if name]
    report = compare_metrics(current, baseline,
                             tolerance_scale=args.tolerance_scale,
                             only=only)
    print(format_report(report))
    return 0 if report.ok else 1


def build_parser():
    parser = argparse.ArgumentParser(
        description="capture/compare benchmark baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("capture", help="freeze a run report into a baseline")
    p.add_argument("--json", required=True,
                   help="pytest-benchmark JSON run report")
    p.add_argument("--out", default=str(DEFAULT_BASELINE),
                   help=f"baseline to write (default {DEFAULT_BASELINE})")
    p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                   help="per-metric multiplicative tolerance band")
    p.add_argument("--notes", help="free-form provenance note")
    p.set_defaults(fn=_cmd_capture)

    p = sub.add_parser("compare", help="judge a run report against a baseline")
    p.add_argument("--json", required=True,
                   help="pytest-benchmark JSON run report")
    p.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                   help=f"baseline to compare against (default {DEFAULT_BASELINE})")
    p.add_argument("--tolerance-scale", type=float, default=1.0,
                   help="multiply every tolerance band")
    p.add_argument("--metrics",
                   help="comma-separated metric names: compare only these "
                        "(each must exist in the baseline)")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("speedup",
                       help="require a minimum parallel speedup from a run")
    p.add_argument("--json", required=True,
                   help="pytest-benchmark JSON run report")
    p.add_argument("--metric", default="test_suite_sweep.suite_speedup",
                   help="speedup metric to check")
    p.add_argument("--min", type=float, default=2.0,
                   help="minimum acceptable speedup (default 2.0)")
    p.set_defaults(fn=_cmd_speedup)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
