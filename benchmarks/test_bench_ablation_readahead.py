"""Ablation D — warden read-ahead depth (DESIGN decision: prefetching).

"The warden performs read-ahead of frames to lower latency" (§5.1).  This
ablation quantifies why: with little or no read-ahead, the per-frame
request round trip surfaces in every frame time and a track whose demand is
near link capacity becomes unsustainable.
"""

from conftest import run_once

from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant

DEPTHS = (1, 2, 4, 8, 16)


def drops_with_readahead(depth):
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=600))
    viceroy = Viceroy(sim, network)
    store = MovieStore()
    store.add(Movie("m", n_frames=400))
    build_video(sim, viceroy, network, store, readahead=depth)
    api = OdysseyAPI(viceroy, "xanim")
    player = VideoPlayer(sim, api, "xanim", "/odyssey/video", "m",
                         policy="jpeg99")
    player.start()
    sim.run(until=50.0)
    return player.stats.drops


def test_ablation_readahead_depth(benchmark):
    def sweep():
        return {depth: drops_with_readahead(depth) for depth in DEPTHS}

    drops = run_once(benchmark, sweep)
    print("\nAblation D — read-ahead depth vs JPEG(99) drops at 120 KB/s "
          "(400 frames)")
    for depth, count in drops.items():
        note = "  <- default" if depth == 8 else ""
        print(f"  depth {depth:2d}: {count:3d} drops{note}")

    # Deeper read-ahead absorbs jitter; the default is in the flat region.
    assert drops[8] <= drops[1]
    assert drops[8] <= drops[2] + 5
    assert drops[16] <= drops[8] + 5
    benchmark.extra_info["drops_by_depth"] = {str(k): v for k, v in drops.items()}
