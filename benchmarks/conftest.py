"""Benchmark conventions.

Every figure/table benchmark runs its experiment exactly once inside the
timer (``benchmark.pedantic`` with one round — the experiment itself already
aggregates several seeded trials), prints the regenerated artifact next to
the paper's published numbers, and records headline values in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

#: Trials per observation in benchmarks.  The paper uses five; three keeps
#: the full benchmark suite to a few minutes while σ stays meaningful.
#: Raise via --repro-trials for the faithful five.
DEFAULT_BENCH_TRIALS = 3


def pytest_addoption(parser):
    parser.addoption(
        "--repro-trials", type=int, default=DEFAULT_BENCH_TRIALS,
        help="trials per experiment cell (paper uses 5)",
    )


@pytest.fixture
def trials(request):
    return request.config.getoption("--repro-trials")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
