"""Benchmark conventions.

Every figure/table benchmark runs its experiment exactly once inside the
timer (``benchmark.pedantic`` with one round — the experiment itself already
aggregates several seeded trials), prints the regenerated artifact next to
the paper's published numbers, and records headline values in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_BENCH_PROFILE_DIR`` (or run ``repro bench --profile``) to run
every benchmark under :mod:`cProfile`: each test writes a ``.pstats`` dump
plus a top-20 cumulative-time table into that directory.  Profiler
overhead distorts the timings, so profiled runs are for reading, never
for baselines.
"""

import os
import re

import pytest

#: Trials per observation in benchmarks.  The paper uses five; three keeps
#: the full benchmark suite to a few minutes while σ stays meaningful.
#: Raise via --repro-trials for the faithful five.
DEFAULT_BENCH_TRIALS = 3


def pytest_addoption(parser):
    parser.addoption(
        "--repro-trials", type=int, default=DEFAULT_BENCH_TRIALS,
        help="trials per experiment cell (paper uses 5)",
    )
    parser.addoption(
        "--repro-jobs", type=int, default=1,
        help="worker processes for trial execution (0 = all cores)",
    )
    parser.addoption(
        "--repro-timeout", type=float, default=None,
        help="wall-clock watchdog per trial unit (seconds; default: none)",
    )


@pytest.fixture
def trials(request):
    return request.config.getoption("--repro-trials")


@pytest.fixture
def jobs(request):
    from repro.parallel import resolve_jobs

    return resolve_jobs(request.config.getoption("--repro-jobs"))


@pytest.fixture(autouse=True)
def _parallel_overrides(jobs, request):
    """Route every benchmarked experiment through the configured jobs.

    The result cache is always off here: a benchmark that answered from
    disk would time the cache, not the code.  ``--repro-timeout`` arms the
    per-unit wall-clock watchdog so a hung trial aborts the run instead of
    stalling CI until the job-level timeout.
    """
    from repro.parallel import overrides, resolve_timeout

    timeout = resolve_timeout(request.config.getoption("--repro-timeout"))
    with overrides(jobs=jobs, cache=None, timeout=timeout):
        yield


@pytest.fixture(autouse=True)
def _profile(request):
    """Profile the whole test when ``REPRO_BENCH_PROFILE_DIR`` is set.

    One profile per benchmark: ``<test>.pstats`` for ``snakeviz``/``pstats``
    tooling, ``<test>.txt`` with the top 20 functions by cumulative time
    for eyes.  Future perf work starts from these instead of guessing.
    """
    directory = os.environ.get("REPRO_BENCH_PROFILE_DIR")
    if not directory:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        os.makedirs(directory, exist_ok=True)
        stem = re.sub(r"[^\w.-]+", "_", request.node.name)
        profiler.dump_stats(os.path.join(directory, f"{stem}.pstats"))
        with open(os.path.join(directory, f"{stem}.txt"), "w",
                  encoding="utf-8") as fh:
            stats = pstats.Stats(profiler, stream=fh)
            stats.sort_stats("cumulative").print_stats(20)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
