"""Microbenchmarks of the substrate: event loop, link, RPC throughput.

Not a paper artifact — these guard the simulator's own performance so the
figure benchmarks stay fast, and demonstrate its capacity.
"""

from repro.net.network import Network
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant


def test_event_loop_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick(_):
            count[0] += 1

        for i in range(20_000):
            sim.timeout((i % 97) / 10.0).add_callback(tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 20_000


def test_process_switch_throughput(benchmark):
    def run_processes():
        sim = Simulator()

        def worker():
            for _ in range(500):
                yield sim.timeout(0.001)

        for _ in range(20):
            sim.process(worker())
        sim.run()
        return sim.now

    benchmark(run_processes)


def test_rpc_fetch_throughput(benchmark):
    def run_fetches():
        sim = Simulator()
        network = Network(sim, constant(HIGH_BANDWIDTH, duration=10_000))
        server = network.add_host("server")
        service = RpcService(sim, server, "svc")
        service.register(
            "get", lambda body: ServerReply(bulk=service.make_bulk(32 * 1024))
        )
        connection = RpcConnection(sim, network, "server", "svc", "bench")

        def client():
            for _ in range(100):
                yield from connection.fetch("get", body_bytes=64)

        sim.process(client())
        sim.run()
        return len(connection.log.throughputs)

    assert benchmark(run_fetches) == 100
