"""Extension benchmark — end-to-end adaptation agility (§2.4).

Fig. 8 measures how fast the *estimate* moves; this measures how fast an
*application's fidelity* follows: the full detect → notify → respond
pipeline, using the adaptive video player's track switches.
"""

from conftest import run_once

from repro.experiments.adaptation import (
    format_adaptation,
    run_adaptation_experiment,
)


def test_adaptation_agility(benchmark, trials):
    def run_both():
        return [run_adaptation_experiment(name, trials=trials)
                for name in ("step-up", "step-down")]

    results = run_once(benchmark, run_both)
    print("\n" + format_adaptation(results))
    by_name = {result.waveform: result for result in results}

    for result in results:
        # The upcall precedes (or coincides with) the response.
        assert result.upcall_cell.mean <= result.switch_cell.mean + 1e-6
        # The whole pipeline completes within a few seconds of the step.
        assert result.switch_cell.mean < 6.0

    # Downward steps must be acted on promptly — that is where frames die
    # (paper: drops cluster at downward transitions).
    assert by_name["step-down"].switch_cell.mean < 4.0
    benchmark.extra_info["switch_latency"] = {
        result.waveform: result.switch_cell.mean for result in results
    }
