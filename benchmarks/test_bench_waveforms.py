"""Figs. 7 and 13 — the reference waveforms and the urban trace.

These are inputs, not measurements; the benchmark regenerates them, prints
their structure, and times trace construction/query operations (they are on
the hot path of every link transmission).
"""

from conftest import run_once

from repro.trace.integrate import transmission_finish_time
from repro.trace.replay import serialize_trace
from repro.trace.waveforms import WAVEFORMS, urban_walk, waveform


def test_fig7_reference_waveforms(benchmark):
    def build_all():
        return {name: waveform(name) for name in
                ("step-up", "step-down", "impulse-up", "impulse-down")}

    traces = run_once(benchmark, build_all)
    print("\nFig. 7 — reference waveforms (duration, transitions, levels)")
    for name, trace in traces.items():
        levels = sorted({s.bandwidth / 1024 for s in trace.segments})
        print(f"  {name:13s} {trace.duration:.0f} s, transitions at "
              f"{trace.transitions}, levels {levels} KB/s")
    benchmark.extra_info["waveforms"] = len(traces)


def test_fig13_urban_walk(benchmark):
    trace = run_once(benchmark, urban_walk)
    print("\nFig. 13 — bandwidth variation in the urban scenario")
    print(serialize_trace(trace))
    minutes = [s.duration / 60 for s in trace.segments]
    print(f"  segments (minutes): {minutes}  total {sum(minutes):.0f} min")
    benchmark.extra_info["duration_s"] = trace.duration


def test_trace_query_throughput(benchmark):
    """Microbenchmark: bandwidth_at + transmission integration."""
    trace = urban_walk()

    def query_batch():
        total = 0.0
        for i in range(1000):
            t = (i * 7919) % 900
            total += trace.bandwidth_at(t)
            total += transmission_finish_time(trace, t, 8192)
        return total

    benchmark(query_batch)
