"""Extension benchmark — consistency as a fidelity dimension (§2.2).

"One well-known, universal dimension is consistency."  This quantifies the
Coda-style trade the paper describes: open latency falls and staleness
rises as the consistency level relaxes, and the adaptive reader lands on
the strong side at high bandwidth and the relaxed side at low.
"""

from conftest import run_once

from repro.apps.files import DocumentReader, build_files
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant

LEVELS = (1.0, 0.5, 0.1, "adaptive")


def run_reader(bandwidth, policy):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=3600))
    viceroy = Viceroy(sim, network)
    warden, server = build_files(sim, viceroy, network, update_period=3.0)
    docs = [server.create(f"doc{i}") for i in range(3)]
    api = OdysseyAPI(viceroy, "reader")
    reader = DocumentReader(sim, api, "reader", "/odyssey/files", docs,
                            server, period_seconds=0.5, policy=policy)
    reader.start()
    sim.run(until=90.0)
    return reader.stats


def test_consistency_fidelity_tradeoff(benchmark):
    def sweep():
        results = {}
        for bandwidth, label in ((HIGH_BANDWIDTH, "high"),
                                 (LOW_BANDWIDTH, "low")):
            for level in LEVELS:
                results[(label, level)] = run_reader(bandwidth, level)
        return results

    results = run_once(benchmark, sweep)
    print("\nConsistency fidelity vs open latency and staleness")
    print(f"{'bandwidth':>9s} {'level':>9s} {'open (ms)':>10s} "
          f"{'stale reads':>12s}")
    for (label, level), stats in results.items():
        print(f"{label:>9s} {str(level):>9s} "
              f"{stats.mean_open_seconds * 1000:10.1f} "
              f"{stats.stale_fraction:11.0%}")

    for label in ("high", "low"):
        strong = results[(label, 1.0)]
        relaxed = results[(label, 0.1)]
        # The §2.2 trade, in both columns of the table:
        assert strong.stale_reads == 0
        assert relaxed.mean_open_seconds < strong.mean_open_seconds
        assert relaxed.stale_fraction > 0

    adaptive_high = results[("high", "adaptive")]
    adaptive_low = results[("low", "adaptive")]
    # Adaptive behaves like strong when it can afford it, and approaches
    # the relaxed latency when it cannot.
    assert adaptive_high.stale_fraction <= 0.05
    assert adaptive_low.mean_open_seconds < \
        results[("low", 1.0)].mean_open_seconds * 0.7
    benchmark.extra_info["adaptive_low_open_ms"] = \
        adaptive_low.mean_open_seconds * 1000
