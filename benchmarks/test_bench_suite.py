"""The evaluation sweep end to end: ``suite_wall_seconds``.

One benchmark runs the representative experiment sweep
(:func:`repro.parallel.sweep.sweep_units` — fig8 across all four
waveforms, a fig9 panel, fig10/fig11/fig12 adaptive cells, adaptation,
and the turbulence boundary) through the trial runner at the configured
``--repro-jobs``.  The wall time lands in ``extra_info`` as the
``suite_wall_seconds`` headline metric the baseline gates; with
``--repro-jobs > 1`` the serial sweep is timed once more and the ratio
recorded as ``suite_speedup``, which CI's perf gate holds to >= 2x at
four jobs (``benchmarks/baseline.py speedup``).

Determinism is asserted here too, not just in tier-1: the parallel and
serial sweeps must produce identical result lists.
"""

import time

from conftest import run_once

from repro.parallel import run_units, sweep_units


def _wall(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


def test_suite_sweep(benchmark, trials, jobs):
    units = sweep_units(trials=trials)
    results, wall = _wall(run_once, benchmark, run_units, units,
                          jobs=jobs, cache=None)
    assert len(results) == len(units)
    benchmark.extra_info["suite_wall_seconds"] = wall
    benchmark.extra_info["suite_units"] = len(units)
    if jobs > 1:
        serial_results, serial_wall = _wall(run_units, units,
                                            jobs=1, cache=None)
        assert repr(serial_results) == repr(results)
        benchmark.extra_info["suite_speedup"] = serial_wall / wall
