"""Fig. 11 — web browser performance and fidelity."""

from conftest import run_once

from repro.apps.web.browser import LATENCY_GOAL_SECONDS
from repro.experiments.report import format_web_table
from repro.experiments.web import PAPER_FIG11, run_web_table


def test_fig11_web_table(benchmark, trials):
    table = run_once(benchmark, run_web_table, trials=trials)
    print("\n" + format_web_table(table))

    # The Ethernet baseline anchors the latency goal (paper: 0.20 s).
    ethernet = table.cell("ethernet", "baseline")
    assert 0.12 <= ethernet.seconds.mean <= 0.28

    for waveform in ("step-up", "step-down", "impulse-up", "impulse-down"):
        adaptive = table.cell(waveform, "adaptive")
        # "Odyssey meets our performance goal in all cases"
        assert adaptive.seconds.mean <= LATENCY_GOAL_SECONDS * 1.08
        # "...and does so at better quality than any of the sufficiently
        # fast static strategies."
        for strategy in (0.05, 0.25, 0.50):
            static = table.cell(waveform, strategy)
            if static.seconds.mean <= LATENCY_GOAL_SECONDS:
                assert adaptive.fidelity.mean >= static.fidelity.mean - 0.02

    # "The static strategy of fetching full-quality images only meets our
    # performance goals in the Impulse-Down case."
    assert table.cell("impulse-down", 1.00).seconds.mean <= \
        LATENCY_GOAL_SECONDS * 1.05
    assert table.cell("impulse-up", 1.00).seconds.mean > LATENCY_GOAL_SECONDS

    # Static latencies rise with fidelity (more bytes, more time).
    for waveform in ("step-up", "impulse-up"):
        assert table.cell(waveform, 0.05).seconds.mean < \
            table.cell(waveform, 1.00).seconds.mean

    benchmark.extra_info["adaptive_step_up_seconds"] = \
        table.cell("step-up", "adaptive").seconds.mean
    benchmark.extra_info["paper_adaptive_step_up_seconds"] = \
        PAPER_FIG11["step-up"]["adaptive"][0]
