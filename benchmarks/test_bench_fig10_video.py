"""Fig. 10 — video player performance and fidelity."""

from conftest import run_once

from repro.experiments.report import format_video_table
from repro.experiments.video import PAPER_FIG10, run_video_table


def test_fig10_video_table(benchmark, trials):
    table = run_once(benchmark, run_video_table, trials=trials)
    print("\n" + format_video_table(table))

    # Shape assertions (the paper's claims, not its absolute numbers):
    for waveform in ("step-up", "step-down", "impulse-up", "impulse-down"):
        adaptive = table.cell(waveform, "adaptive")
        jpeg50 = table.cell(waveform, "jpeg50")
        jpeg99 = table.cell(waveform, "jpeg99")
        # "Odyssey achieves fidelity as good as or better than the JPEG(50)
        # strategy in all cases"
        assert adaptive.fidelity.mean >= jpeg50.fidelity.mean - 0.02
        # "...but performs as well or better than JPEG(99) within
        # experimental error" (drops).
        assert adaptive.drops.mean <= jpeg99.drops.mean + 25

    # Static sanity: JPEG(99) suffers on every low-bandwidth waveform.
    assert table.cell("step-up", "jpeg99").drops.mean > 100
    assert table.cell("impulse-up", "jpeg99").drops.mean > \
        table.cell("step-up", "jpeg99").drops.mean
    assert table.cell("impulse-down", "jpeg99").drops.mean < 60
    # B&W never drops.
    assert table.cell("step-down", "bw").drops.mean < 5

    benchmark.extra_info["adaptive_step_up_drops"] = \
        table.cell("step-up", "adaptive").drops.mean
    benchmark.extra_info["paper_adaptive_step_up_drops"] = \
        PAPER_FIG10["step-up"]["adaptive"][0]
