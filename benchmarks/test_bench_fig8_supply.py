"""Fig. 8 — agility of bandwidth estimation, varying supply."""

from conftest import run_once

from repro.experiments.report import format_supply_result
from repro.experiments.supply import REFERENCE_WAVEFORMS, run_supply_experiment
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH

#: The paper's qualitative results, used as sanity gates.
PAPER_STEP_DOWN_SETTLING = 2.0  # seconds


def test_fig8_supply_agility(benchmark, trials):
    def run_all():
        return {name: run_supply_experiment(name, trials=trials)
                for name in REFERENCE_WAVEFORMS}

    results = run_once(benchmark, run_all)
    print("\n")
    for name in REFERENCE_WAVEFORMS:
        print(format_supply_result(results[name]))

    step_up = results["step-up"]
    step_down = results["step-down"]
    # Paper: Step-Up detected "almost instantaneously".
    assert step_up.detection_cell.mean < 1.5
    # Paper: Step-Down settling time 2.0 s.
    assert step_down.settling_cell.mean < PAPER_STEP_DOWN_SETTLING * 2.5
    benchmark.extra_info["step_down_settling_s"] = step_down.settling_cell.mean
    benchmark.extra_info["step_up_detection_s"] = step_up.detection_cell.mean

    # Series sanity: estimates track the theoretical levels from below.
    for name, result in results.items():
        tail = [v for t, v in result.merged_series() if 50 <= t <= 58]
        assert tail
        target = HIGH_BANDWIDTH if name == "step-up" else (
            LOW_BANDWIDTH if name == "step-down" else None)
        if target is not None:
            mean_tail = sum(tail) / len(tail)
            assert 0.85 * target <= mean_tail <= 1.05 * target
