"""Fig. 9 — agility of bandwidth estimation, varying demand."""

from conftest import run_once

from repro.experiments.demand import UTILIZATIONS, run_demand_experiment
from repro.experiments.report import format_demand_result
from repro.trace.waveforms import HIGH_BANDWIDTH


def test_fig9_demand_agility(benchmark, trials):
    def run_all():
        return {u: run_demand_experiment(u, trials=trials)
                for u in UTILIZATIONS}

    results = run_once(benchmark, run_all)
    print("\n")
    for utilization in UTILIZATIONS:
        print(format_demand_result(results[utilization]))

    # Paper: the second stream settles in every case; the full-utilization
    # transient is the most pronounced (~5 s).
    for utilization, result in results.items():
        assert result.settling_cell.mean < 15.0
    assert (results[1.00].settling_cell.mean
            >= results[0.10].settling_cell.mean * 0.8)

    # The total estimate stays near the link capacity once both settle.
    for result in results.values():
        for trial in result.trials:
            tail = [v for t, v in trial.total_series if 50 <= t <= 58]
            mean_tail = sum(tail) / len(tail)
            assert 0.80 * HIGH_BANDWIDTH <= mean_tail <= 1.10 * HIGH_BANDWIDTH
    benchmark.extra_info["settling_full_util_s"] = results[1.00].settling_cell.mean
