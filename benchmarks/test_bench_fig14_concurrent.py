"""Figs. 13-14 — concurrent applications under three management policies.

The paper's headline: "Odyssey drops a factor of 2 to 5 fewer frames than
the other strategies, and Web pages are loaded and displayed roughly twice
as fast.  The resulting decrease in network utilization improves speech
recognition time as well."
"""

from conftest import run_once

from repro.experiments.concurrent import PAPER_FIG14, run_concurrent_table
from repro.experiments.report import format_concurrent_table


def test_fig14_concurrent_table(benchmark, trials):
    table = run_once(benchmark, run_concurrent_table, trials=trials)
    print("\n" + format_concurrent_table(table))

    odyssey = table.row("odyssey")
    laissez = table.row("laissez-faire")
    blind = table.row("blind-optimism")

    # Headline: at least 2x fewer dropped frames than either baseline.
    assert odyssey.video_drops.mean * 2 <= laissez.video_drops.mean
    assert odyssey.video_drops.mean * 2 <= blind.video_drops.mean
    # Laissez-faire sits between Odyssey and blind optimism on drops.
    assert laissez.video_drops.mean < blind.video_drops.mean

    # Web pages load faster under Odyssey (paper: roughly twice as fast).
    assert odyssey.web_seconds.mean * 1.3 <= laissez.web_seconds.mean
    assert odyssey.web_seconds.mean * 1.3 <= blind.web_seconds.mean

    # Speech recognition is fastest under Odyssey.
    assert odyssey.speech_seconds.mean <= laissez.speech_seconds.mean
    assert odyssey.speech_seconds.mean <= blind.speech_seconds.mean

    # The trade that buys it: lower fidelity for video and web data.
    assert odyssey.video_fidelity.mean < blind.video_fidelity.mean
    assert odyssey.web_fidelity.mean < blind.web_fidelity.mean

    benchmark.extra_info["odyssey_drops"] = odyssey.video_drops.mean
    benchmark.extra_info["paper_odyssey_drops"] = PAPER_FIG14["odyssey"][0]
    benchmark.extra_info["drop_ratio_blind"] = \
        blind.video_drops.mean / max(odyssey.video_drops.mean, 1)
